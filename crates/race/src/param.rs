//! Parameter spaces and configurations.

use std::collections::HashMap;
use std::fmt;

/// The domain of one tunable parameter.
///
/// The paper: "There are parameters that require a binary true or false
/// value … Other parameters can take on a relatively large number of
/// possibilities … to avoid wasting irace's budget, these parameters are
/// given a limited set of discrete values. Other parameters can assume a
/// discrete set of parameters to select a particular feature."
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// An unordered choice among named alternatives (e.g. which branch
    /// predictor).
    Categorical(Vec<String>),
    /// An *ordered* set of discrete numeric values (e.g. ROB sizes).
    Integer(Vec<i64>),
    /// True/false.
    Bool,
}

impl Domain {
    /// Number of candidate values.
    pub fn cardinality(&self) -> usize {
        match self {
            Domain::Categorical(v) => v.len(),
            Domain::Integer(v) => v.len(),
            Domain::Bool => 2,
        }
    }
}

/// One tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Unique name.
    pub name: String,
    /// Candidate values.
    pub domain: Domain,
}

/// The value a configuration assigns to one parameter, stored as an index
/// into its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Index into a categorical domain.
    Cat(u16),
    /// Index into an ordered integer domain.
    Int(u16),
    /// A boolean.
    Flag(bool),
}

/// An ordered collection of parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSpace {
    params: Vec<Param>,
    by_name: HashMap<String, usize>,
}

impl ParamSpace {
    /// Creates an empty space.
    pub fn new() -> ParamSpace {
        ParamSpace::default()
    }

    fn push(&mut self, p: Param) {
        assert!(
            !self.by_name.contains_key(&p.name),
            "duplicate parameter {}",
            p.name
        );
        assert!(p.domain.cardinality() >= 1, "empty domain for {}", p.name);
        self.by_name.insert(p.name.clone(), self.params.len());
        self.params.push(p);
    }

    /// Adds a parameter with a caller-built domain, **without**
    /// normalising the candidate list.
    ///
    /// This is the escape hatch for spaces read from external
    /// descriptions, where the candidate list must be preserved verbatim;
    /// the builder methods ([`ParamSpace::add_integer`],
    /// [`ParamSpace::add_categorical`]) canonicalise instead. A
    /// duplicated or unsorted list skews the sampling weights — the
    /// `racesim-analyzer` lints RA002/RA003 exist to catch that on this
    /// path.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate parameter name or an empty domain.
    pub fn add_param(&mut self, p: Param) {
        self.push(p);
    }

    /// Adds a categorical parameter. Repeated choices are dropped (first
    /// occurrence wins) so no alternative carries twice the sampling
    /// weight; choice order is otherwise preserved — the first choice is
    /// the default.
    pub fn add_categorical(&mut self, name: &str, choices: &[&str]) {
        let mut cs: Vec<String> = Vec::with_capacity(choices.len());
        for c in choices {
            if !cs.iter().any(|x| x == c) {
                cs.push((*c).to_string());
            }
        }
        self.push(Param {
            name: name.to_string(),
            domain: Domain::Categorical(cs),
        });
    }

    /// Adds an ordered discrete numeric parameter. The candidate list is
    /// sorted ascending and deduplicated: elite-neighbourhood sampling
    /// treats list adjacency as value adjacency, and a duplicated
    /// candidate would silently double its sampling weight.
    pub fn add_integer(&mut self, name: &str, values: &[i64]) {
        let mut vs = values.to_vec();
        vs.sort_unstable();
        vs.dedup();
        self.push(Param {
            name: name.to_string(),
            domain: Domain::Integer(vs),
        });
    }

    /// Adds a boolean parameter.
    pub fn add_bool(&mut self, name: &str) {
        self.push(Param {
            name: name.to_string(),
            domain: Domain::Bool,
        });
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameters, in insertion order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The index of a named parameter.
    ///
    /// # Panics
    ///
    /// Panics if no parameter has this name.
    pub fn index_of(&self, name: &str) -> usize {
        *self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// The index of a named parameter, or `None` if the space has no
    /// parameter with this name — the non-panicking form of
    /// [`index_of`](Self::index_of) for callers handling external input.
    pub fn try_index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Total number of distinct configurations (saturating).
    pub fn cardinality(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.domain.cardinality() as u128)
            .product()
    }

    /// The default configuration: the first value of every domain.
    pub fn default_configuration(&self) -> Configuration {
        Configuration {
            values: self
                .params
                .iter()
                .map(|p| match &p.domain {
                    Domain::Categorical(_) => Value::Cat(0),
                    Domain::Integer(_) => Value::Int(0),
                    Domain::Bool => Value::Flag(false),
                })
                .collect(),
        }
    }
}

/// A complete assignment of values to a [`ParamSpace`]'s parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    pub(crate) values: Vec<Value>,
}

impl Configuration {
    /// The raw value for parameter `idx`.
    pub fn value(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// Sets the raw value for parameter `idx`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the value kind mismatches the domain or
    /// the index is out of the domain's range — the caller is expected to
    /// construct values through the sampling model or the setters below.
    pub fn set_value(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// The selected choice of a categorical parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not categorical.
    pub fn categorical<'s>(&self, space: &'s ParamSpace, name: &str) -> &'s str {
        let idx = space.index_of(name);
        match (&space.params()[idx].domain, self.values[idx]) {
            (Domain::Categorical(cs), Value::Cat(i)) => &cs[i as usize],
            _ => panic!("parameter {name} is not categorical"),
        }
    }

    /// The selected value of an integer parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not an integer parameter.
    pub fn integer(&self, space: &ParamSpace, name: &str) -> i64 {
        let idx = space.index_of(name);
        match (&space.params()[idx].domain, self.values[idx]) {
            (Domain::Integer(vs), Value::Int(i)) => vs[i as usize],
            _ => panic!("parameter {name} is not an integer parameter"),
        }
    }

    /// The value of a boolean parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not boolean.
    pub fn flag(&self, space: &ParamSpace, name: &str) -> bool {
        let idx = space.index_of(name);
        match (&space.params()[idx].domain, self.values[idx]) {
            (Domain::Bool, Value::Flag(b)) => b,
            _ => panic!("parameter {name} is not boolean"),
        }
    }

    /// Sets a categorical parameter by choice name.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not categorical or the choice is
    /// unknown.
    pub fn set_categorical(&mut self, space: &ParamSpace, name: &str, choice: &str) {
        let idx = space.index_of(name);
        match &space.params()[idx].domain {
            Domain::Categorical(cs) => {
                let i = cs
                    .iter()
                    .position(|c| c == choice)
                    .unwrap_or_else(|| panic!("{name} has no choice {choice}"));
                self.values[idx] = Value::Cat(i as u16);
            }
            _ => panic!("parameter {name} is not categorical"),
        }
    }

    /// Sets an integer parameter to one of its candidate values.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not integer-valued or `v` is not a
    /// candidate.
    pub fn set_integer(&mut self, space: &ParamSpace, name: &str, v: i64) {
        let idx = space.index_of(name);
        match &space.params()[idx].domain {
            Domain::Integer(vs) => {
                let i = vs
                    .iter()
                    .position(|x| *x == v)
                    .unwrap_or_else(|| panic!("{name} has no candidate value {v}"));
                self.values[idx] = Value::Int(i as u16);
            }
            _ => panic!("parameter {name} is not an integer parameter"),
        }
    }

    /// Sets a boolean parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is not boolean.
    pub fn set_flag(&mut self, space: &ParamSpace, name: &str, v: bool) {
        let idx = space.index_of(name);
        match &space.params()[idx].domain {
            Domain::Bool => self.values[idx] = Value::Flag(v),
            _ => panic!("parameter {name} is not boolean"),
        }
    }

    /// Renders the configuration as `name=value` pairs.
    pub fn render(&self, space: &ParamSpace) -> String {
        let mut out = String::new();
        for (p, v) in space.params().iter().zip(&self.values) {
            if !out.is_empty() {
                out.push_str(", ");
            }
            match (&p.domain, v) {
                (Domain::Categorical(cs), Value::Cat(i)) => {
                    out.push_str(&format!("{}={}", p.name, cs[*i as usize]));
                }
                (Domain::Integer(vs), Value::Int(i)) => {
                    out.push_str(&format!("{}={}", p.name, vs[*i as usize]));
                }
                (Domain::Bool, Value::Flag(b)) => {
                    out.push_str(&format!("{}={}", p.name, b));
                }
                _ => out.push_str(&format!("{}=<corrupt>", p.name)),
            }
        }
        out
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Categorical(cs) => write!(f, "{{{}}}", cs.join("|")),
            Domain::Integer(vs) => write!(
                f,
                "[{}]",
                vs.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Domain::Bool => f.write_str("{true|false}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_categorical("predictor", &["bimodal", "gshare", "tournament"]);
        s.add_integer("rob", &[32, 64, 128, 192]);
        s.add_bool("prefetch");
        s
    }

    #[test]
    fn accessors_roundtrip() {
        let s = space();
        let mut c = s.default_configuration();
        assert_eq!(c.categorical(&s, "predictor"), "bimodal");
        assert_eq!(c.integer(&s, "rob"), 32);
        assert!(!c.flag(&s, "prefetch"));

        c.set_categorical(&s, "predictor", "tournament");
        c.set_integer(&s, "rob", 128);
        c.set_flag(&s, "prefetch", true);
        assert_eq!(c.categorical(&s, "predictor"), "tournament");
        assert_eq!(c.integer(&s, "rob"), 128);
        assert!(c.flag(&s, "prefetch"));
    }

    #[test]
    fn cardinality() {
        assert_eq!(space().cardinality(), 3 * 4 * 2);
    }

    #[test]
    fn render_is_readable() {
        let s = space();
        let c = s.default_configuration();
        assert_eq!(c.render(&s), "predictor=bimodal, rob=32, prefetch=false");
    }

    #[test]
    fn candidates_are_sorted_and_deduplicated() {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[16, 4, 8, 4, 2, 16]);
        s.add_categorical("c", &["b", "a", "b"]);
        match &s.params()[0].domain {
            Domain::Integer(vs) => assert_eq!(vs, &[2, 4, 8, 16]),
            d => panic!("unexpected domain {d}"),
        }
        match &s.params()[1].domain {
            // First occurrence wins; order is meaning, not magnitude.
            Domain::Categorical(cs) => assert_eq!(cs, &["b", "a"]),
            d => panic!("unexpected domain {d}"),
        }
        // The raw path keeps whatever it is given (the analyzer lints
        // police it instead).
        s.add_param(Param {
            name: "raw".to_string(),
            domain: Domain::Integer(vec![8, 4, 8]),
        });
        match &s.params()[2].domain {
            Domain::Integer(vs) => assert_eq!(vs, &[8, 4, 8]),
            d => panic!("unexpected domain {d}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_rejected() {
        let mut s = space();
        s.add_bool("rob");
    }

    #[test]
    #[should_panic(expected = "no candidate value")]
    fn setting_off_grid_integer_panics() {
        let s = space();
        let mut c = s.default_configuration();
        c.set_integer(&s, "rob", 100);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_parameter_panics() {
        let s = space();
        let c = s.default_configuration();
        let _ = c.flag(&s, "nonexistent");
    }
}
