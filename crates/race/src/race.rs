//! The racing procedure (step 2 of Figure 2).

use crate::cache::CostCache;
use crate::param::{Configuration, ParamSpace};
use crate::tuner::CostFn;
use racesim_stats::{friedman_test, mean, paired_t_test, wilcoxon_signed_rank};

/// Which statistical machinery eliminates losing configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EliminationTest {
    /// Friedman rank test as a gate, then pairwise Wilcoxon signed-rank
    /// against the current leader (irace's default F-race).
    Friedman,
    /// Pairwise paired t-tests against the current leader (t-race).
    PairedT,
}

/// Race parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceSettings {
    /// Significance level for elimination.
    pub alpha: f64,
    /// Number of instances evaluated before the first statistical test
    /// (irace's `firstTest`).
    pub first_test: usize,
    /// Never eliminate below this many survivors.
    pub min_survivors: usize,
    /// The elimination machinery.
    pub test: EliminationTest,
}

impl Default for RaceSettings {
    fn default() -> RaceSettings {
        RaceSettings {
            alpha: 0.05,
            first_test: 5,
            min_survivors: 2,
            test: EliminationTest::Friedman,
        }
    }
}

/// One elimination event, for Figure-2-style visualisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceLogEntry {
    /// Index of the eliminated configuration (into the race's config
    /// list).
    pub config: usize,
    /// How many instances it had been evaluated on when eliminated.
    pub after_blocks: usize,
}

/// Outcome of one race.
#[derive(Debug, Clone)]
pub struct RaceResult {
    /// Surviving configuration indices, best (lowest mean cost) first.
    pub survivors: Vec<usize>,
    /// Mean cost of each surviving configuration over the blocks it saw.
    pub survivor_costs: Vec<f64>,
    /// Instances (blocks) actually raced.
    pub blocks_used: usize,
    /// Fresh cost evaluations consumed.
    pub evals_used: u64,
    /// Elimination log.
    pub log: Vec<RaceLogEntry>,
}

/// Evaluates `configs[i]` on `instance` for every alive index, in
/// parallel, returning the fresh-evaluation count.
#[allow(clippy::too_many_arguments)]
fn evaluate_block(
    space: &ParamSpace,
    configs: &[Configuration],
    alive: &[bool],
    instance: usize,
    cost: &dyn CostFn,
    cache: &CostCache,
    out: &mut [Vec<f64>],
    threads: usize,
) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let todo: Vec<usize> = (0..configs.len())
        .filter(|&i| {
            alive[i] && cache.get(&configs[i], instance).is_none() && seen.insert(&configs[i])
        })
        .collect();
    let fresh = todo.len() as u64;
    if threads <= 1 || todo.len() <= 1 {
        for &i in &todo {
            let c = cost.cost(&configs[i], space, instance);
            cache.put(&configs[i], instance, c);
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(todo.len()) {
                scope.spawn(|_| loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= todo.len() {
                        break;
                    }
                    let i = todo[k];
                    let c = cost.cost(&configs[i], space, instance);
                    cache.put(&configs[i], instance, c);
                });
            }
        })
        .expect("race evaluation worker panicked");
    }
    for (i, row) in out.iter_mut().enumerate() {
        if alive[i] {
            row.push(
                cache
                    .get(&configs[i], instance)
                    .expect("cost evaluated above"),
            );
        }
    }
    fresh
}

/// Races `configs` across `instance_order`, eliminating statistically
/// inferior configurations as evidence accumulates.
///
/// `budget` is decremented by every fresh evaluation; the race stops when
/// the instances or the budget run out, or when only `min_survivors`
/// remain.
///
/// # Panics
///
/// Panics if `configs` or `instance_order` is empty.
#[allow(clippy::too_many_arguments)]
pub fn race(
    space: &ParamSpace,
    configs: &[Configuration],
    instance_order: &[usize],
    cost: &dyn CostFn,
    cache: &CostCache,
    settings: &RaceSettings,
    budget: &mut u64,
    threads: usize,
) -> RaceResult {
    assert!(!configs.is_empty(), "cannot race zero configurations");
    assert!(!instance_order.is_empty(), "cannot race on zero instances");

    let k = configs.len();
    let mut alive = vec![true; k];
    let mut alive_count = k;
    // Per-config cost history (only while alive; index-aligned rows are
    // rebuilt from scratch at elimination time).
    let mut costs: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut log = Vec::new();
    let mut evals_used = 0u64;
    let mut blocks_used = 0usize;

    for (block_no, &inst) in instance_order.iter().enumerate() {
        if *budget < alive_count as u64 {
            break;
        }
        let fresh = evaluate_block(
            space, configs, &alive, inst, cost, cache, &mut costs, threads,
        );
        *budget = budget.saturating_sub(fresh);
        evals_used += fresh;
        blocks_used = block_no + 1;

        if blocks_used < settings.first_test || alive_count <= settings.min_survivors {
            continue;
        }

        // Build the blocks × alive-configs matrix.
        let alive_idx: Vec<usize> = (0..k).filter(|&i| alive[i]).collect();
        let matrix: Vec<Vec<f64>> = (0..blocks_used)
            .map(|b| alive_idx.iter().map(|&i| costs[i][b]).collect())
            .collect();

        // Gate: does any configuration differ at all?
        let gate_passed = match settings.test {
            EliminationTest::Friedman => friedman_test(&matrix)
                .map(|o| o.p_value < settings.alpha)
                .unwrap_or(false),
            EliminationTest::PairedT => true,
        };
        if !gate_passed {
            continue;
        }

        // Pairwise comparison of every alive config against the leader.
        let best_local = (0..alive_idx.len())
            .min_by(|&a, &b| {
                mean(&costs[alive_idx[a]])
                    .partial_cmp(&mean(&costs[alive_idx[b]]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one alive config");
        let best = alive_idx[best_local];

        let mut to_kill: Vec<(usize, f64)> = Vec::new();
        for &j in &alive_idx {
            if j == best {
                continue;
            }
            let worse = mean(&costs[j]) > mean(&costs[best]);
            let p = match settings.test {
                EliminationTest::Friedman => wilcoxon_signed_rank(&costs[j], &costs[best]).1,
                EliminationTest::PairedT => paired_t_test(&costs[j], &costs[best]).1,
            };
            if worse && p < settings.alpha {
                to_kill.push((j, mean(&costs[j])));
            }
        }
        // Respect the survivor floor: spare the best of the condemned.
        let max_kills = alive_count.saturating_sub(settings.min_survivors);
        if to_kill.len() > max_kills {
            to_kill.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            to_kill.truncate(max_kills);
        }
        for (j, _) in to_kill {
            alive[j] = false;
            alive_count -= 1;
            log.push(RaceLogEntry {
                config: j,
                after_blocks: blocks_used,
            });
        }
        if alive_count <= settings.min_survivors {
            // Keep racing only to refine the ranking if instances remain;
            // irace stops the race here, and so do we.
            break;
        }
    }

    let mut survivors: Vec<usize> = (0..k).filter(|&i| alive[i]).collect();
    survivors.sort_by(|&a, &b| {
        mean(&costs[a])
            .partial_cmp(&mean(&costs[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let survivor_costs = survivors.iter().map(|&i| mean(&costs[i])).collect();
    RaceResult {
        survivors,
        survivor_costs,
        blocks_used,
        evals_used,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SyntheticCost;

    impl CostFn for SyntheticCost {
        fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
            // True optimum at x = 0; instances add config-independent noise
            // plus a small interaction so rankings are mostly stable.
            let x = cfg.integer(space, "x") as f64;
            x * x + (instance as f64 % 7.0) + 0.01 * x * (instance as f64 % 3.0)
        }
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[0, 1, 2, 4, 8, 16]);
        s
    }

    fn configs(space: &ParamSpace) -> Vec<Configuration> {
        [0i64, 1, 2, 4, 8, 16]
            .iter()
            .map(|&v| {
                let mut c = space.default_configuration();
                c.set_integer(space, "x", v);
                c
            })
            .collect()
    }

    #[test]
    fn race_eliminates_bad_configs_and_keeps_the_best() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let mut budget = 10_000u64;
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.survivors[0], 0, "x=0 wins");
        assert!(!r.log.is_empty(), "bad configs were eliminated");
        assert!(r.evals_used < 6 * 20, "elimination saves evaluations");
        assert!(budget < 10_000);
    }

    #[test]
    fn elimination_respects_the_survivor_floor() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let mut budget = 10_000u64;
        let settings = RaceSettings {
            min_survivors: 4,
            ..RaceSettings::default()
        };
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &settings,
            &mut budget,
            1,
        );
        assert!(r.survivors.len() >= 4);
    }

    #[test]
    fn tight_budget_stops_the_race_early() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let mut budget = 13u64; // two full blocks of 6, then starve
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.blocks_used, 2);
        assert_eq!(r.evals_used, 12);
    }

    #[test]
    fn identical_configs_are_never_eliminated() {
        let s = space();
        let c = s.default_configuration();
        let cfgs = vec![c.clone(), c.clone(), c];
        let order: Vec<usize> = (0..10).collect();
        let cache = CostCache::new();
        let mut budget = 1000u64;
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.survivors.len(), 3, "ties must survive");
        // Identical configs share cache entries: only one eval per block.
        assert_eq!(r.evals_used, 10);
    }

    #[test]
    fn paired_t_variant_also_finds_the_optimum() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let mut budget = 10_000u64;
        let settings = RaceSettings {
            test: EliminationTest::PairedT,
            ..RaceSettings::default()
        };
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &settings,
            &mut budget,
            1,
        );
        assert_eq!(r.survivors[0], 0);
    }

    #[test]
    fn parallel_racing_matches_serial() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let mut b1 = 10_000u64;
        let mut b2 = 10_000u64;
        let r1 = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &RaceSettings::default(),
            &mut b1,
            1,
        );
        let r2 = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &RaceSettings::default(),
            &mut b2,
            4,
        );
        assert_eq!(r1.survivors, r2.survivors);
        assert_eq!(r1.evals_used, r2.evals_used);
    }
}
