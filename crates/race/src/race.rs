//! The racing procedure (step 2 of Figure 2), fault-tolerant end to end.

use crate::cache::CostCache;
use crate::error::{EvalError, Quarantine, RetryPolicy};
use crate::param::{Configuration, ParamSpace};
use crate::tuner::TryCostFn;
use racesim_stats::{friedman_test, mean, paired_t_test, wilcoxon_signed_rank};
use racesim_telemetry::PhaseTimer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Which statistical machinery eliminates losing configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EliminationTest {
    /// Friedman rank test as a gate, then pairwise Wilcoxon signed-rank
    /// against the current leader (irace's default F-race).
    Friedman,
    /// Pairwise paired t-tests against the current leader (t-race).
    PairedT,
}

/// Race parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceSettings {
    /// Significance level for elimination.
    pub alpha: f64,
    /// Number of instances evaluated before the first statistical test
    /// (irace's `firstTest`).
    pub first_test: usize,
    /// Never eliminate below this many survivors (statistical
    /// eliminations only; configurations whose evaluations *fail* are
    /// removed regardless — a race can end with zero survivors if every
    /// candidate is broken).
    pub min_survivors: usize,
    /// The elimination machinery.
    pub test: EliminationTest,
    /// Retry/backoff policy for transient board-side faults.
    pub retry: RetryPolicy,
}

impl Default for RaceSettings {
    fn default() -> RaceSettings {
        RaceSettings {
            alpha: 0.05,
            first_test: 5,
            min_survivors: 2,
            test: EliminationTest::Friedman,
            retry: RetryPolicy::default(),
        }
    }
}

/// One race event, for Figure-2-style visualisations and post-mortems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceLogEntry {
    /// A configuration was eliminated by the statistical test.
    Eliminated {
        /// Index of the eliminated configuration (into the race's config
        /// list).
        config: usize,
        /// How many instances it had been evaluated on when eliminated.
        after_blocks: usize,
    },
    /// A configuration was removed because its evaluation failed
    /// (simulator panic, watchdog timeout, non-finite cost).
    Failed {
        /// Index of the failed configuration.
        config: usize,
        /// How many complete instances it had seen when it failed.
        after_blocks: usize,
        /// The classified failure reason.
        reason: String,
    },
}

impl RaceLogEntry {
    /// The configuration index this entry concerns.
    pub fn config(&self) -> usize {
        match self {
            RaceLogEntry::Eliminated { config, .. } | RaceLogEntry::Failed { config, .. } => {
                *config
            }
        }
    }

    /// How many blocks the configuration had seen.
    pub fn after_blocks(&self) -> usize {
        match self {
            RaceLogEntry::Eliminated { after_blocks, .. }
            | RaceLogEntry::Failed { after_blocks, .. } => *after_blocks,
        }
    }
}

/// Outcome of one race.
#[derive(Debug, Clone)]
pub struct RaceResult {
    /// Surviving configuration indices, best (lowest mean cost) first.
    pub survivors: Vec<usize>,
    /// Mean cost of each surviving configuration over the blocks it saw.
    pub survivor_costs: Vec<f64>,
    /// Instances (blocks) actually raced.
    pub blocks_used: usize,
    /// Fresh cost evaluations consumed.
    pub evals_used: u64,
    /// Elimination/failure log.
    pub log: Vec<RaceLogEntry>,
    /// Transient-fault retries performed.
    pub retries: u64,
    /// Instances quarantined *during this race*, with reasons.
    pub quarantined: Vec<(usize, String)>,
    /// True when the race was cancelled before running to completion.
    pub aborted: bool,
}

/// Pre-resolved phase timers the racing loop records into when the
/// self-profiler is attached. The handles are lock-free
/// [`PhaseTimer`]s, so an enabled race pays two clock reads per block
/// plus two per statistical pass; the disabled case
/// ([`RaceContext::prof`]` == None`) costs one branch per block.
#[derive(Debug, Clone)]
pub struct RaceProf {
    /// Wall time evaluating configurations (the simulator); the count is
    /// the number of fresh evaluations.
    pub simulate: PhaseTimer,
    /// Wall time in the statistical machinery: matrix assembly, the
    /// Friedman/t gate, and the pairwise tests against the leader.
    pub rank: PhaseTimer,
    /// Wall time applying eliminations (survivor-floor trimming and the
    /// kill log).
    pub eliminate: PhaseTimer,
}

impl RaceProf {
    /// Creates the simulate/rank/eliminate timers as children of
    /// `parent` (disabled parents yield disabled, zero-cost children).
    pub fn new(parent: &PhaseTimer) -> RaceProf {
        RaceProf {
            simulate: parent.child("simulate"),
            rank: parent.child("rank"),
            eliminate: parent.child("eliminate"),
        }
    }
}

/// A pluggable backend that evaluates one block's worth of
/// `(configuration, instance)` tasks somewhere other than the calling
/// thread pool — the seam the distributed coordinator plugs into.
///
/// The contract mirrors the inline path exactly, so swapping backends
/// cannot change a campaign's outcome:
///
/// * the returned vector is **aligned with `tasks`** (slot `k` holds the
///   outcome of `tasks[k]`), preserving the race's deterministic
///   slot-indexed reduction regardless of which backend worker finished
///   first;
/// * every outcome is fully classified: transient faults were retried
///   per `retry` and escalated to [`EvalError::Instance`] when
///   exhausted, panics and non-finite costs were converted to
///   [`EvalError::Config`] — exactly like [`eval_with_retry`];
/// * the `u64` in each slot counts transient retries spent on that
///   task, so budget and retry accounting stay backend-invariant.
///
/// Backend-internal failures (a dead worker process, a torn frame) must
/// be absorbed by the implementation — re-dispatched or evaluated
/// locally — never surfaced as task outcomes.
pub trait EvalDispatch: Sync + std::fmt::Debug {
    /// Evaluates every task in `tasks` on `instance` and returns their
    /// classified outcomes in task order.
    fn eval_batch(
        &self,
        space: &ParamSpace,
        tasks: &[&Configuration],
        instance: usize,
        retry: &RetryPolicy,
    ) -> Vec<(Result<f64, EvalError>, u64)>;
}

/// Shared infrastructure a race runs against: the cost memo, the
/// cross-race instance quarantine, an optional cancellation flag
/// (checked between blocks; a cancelled race reports `aborted`), and the
/// evaluation thread count.
#[derive(Debug, Clone, Copy)]
pub struct RaceContext<'a> {
    /// Memoised `(configuration, instance) → cost` store.
    pub cache: &'a CostCache,
    /// Instances known to be unmeasurable; the race skips them and adds
    /// newly failing ones.
    pub quarantine: &'a Quarantine,
    /// Cooperative cancellation, for checkpoint-and-exit shutdowns.
    pub cancel: Option<&'a AtomicBool>,
    /// Worker threads for block evaluation (`<= 1` runs inline).
    pub threads: usize,
    /// Evaluation backend for block dispatch (`None` evaluates
    /// in-process on `threads` threads).
    pub dispatch: Option<&'a dyn EvalDispatch>,
    /// Phase timers for the self-profiler, or `None` when profiling is
    /// off (the default).
    pub prof: Option<&'a RaceProf>,
}

/// Evaluates one `(configuration, instance)` task with retry/backoff,
/// catching panics and rejecting non-finite costs at the boundary.
/// Returns the classified outcome plus the number of retries taken.
///
/// This is the single classification point every evaluation path shares:
/// the inline race loop, the in-process thread pool, and the distributed
/// coordinator's local fallback all call it, so fault taxonomy and retry
/// accounting cannot drift between backends.
pub fn eval_with_retry(
    cost: &dyn TryCostFn,
    cfg: &Configuration,
    space: &ParamSpace,
    instance: usize,
    retry: &RetryPolicy,
) -> (Result<f64, EvalError>, u64) {
    let mut retries = 0u64;
    loop {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cost.try_cost(cfg, space, instance)
        }));
        let outcome = match caught {
            Ok(Ok(c)) if !c.is_finite() => Err(EvalError::Config(format!("non-finite cost {c}"))),
            Ok(other) => other,
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(EvalError::Config(format!("evaluation panicked: {reason}")))
            }
        };
        match outcome {
            Err(EvalError::Transient(reason)) => {
                if retries + 1 < retry.max_attempts as u64 {
                    retries += 1;
                    let pause = retry.backoff(retries as u32);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    continue;
                }
                // Retries exhausted: the board, not the configuration, is
                // at fault — escalate to an instance fault.
                return (
                    Err(EvalError::Instance(format!(
                        "transient fault persisted through {} attempts: {reason}",
                        retry.max_attempts
                    ))),
                    retries,
                );
            }
            other => return (other, retries),
        }
    }
}

/// What one block (instance) of evaluations produced.
struct BlockOutcome {
    /// Fresh evaluation tasks attempted (budget units).
    fresh: u64,
    /// Transient retries across all tasks.
    retries: u64,
    /// Configurations whose evaluation failed config-side, with reasons.
    failed: Vec<(usize, String)>,
    /// First board-side fault seen, if any: quarantine the instance.
    instance_fault: Option<String>,
}

/// Evaluates `configs[i]` on `instance` for every alive index, in
/// parallel. Every task runs to completion (deterministic budget
/// accounting regardless of thread interleaving); classification happens
/// afterwards.
fn evaluate_block(
    space: &ParamSpace,
    configs: &[Configuration],
    alive: &[bool],
    instance: usize,
    cost: &dyn TryCostFn,
    ctx: RaceContext<'_>,
    settings: &RaceSettings,
) -> BlockOutcome {
    let mut seen = std::collections::HashSet::new();
    let todo: Vec<usize> = (0..configs.len())
        .filter(|&i| {
            alive[i] && ctx.cache.get(&configs[i], instance).is_none() && seen.insert(&configs[i])
        })
        .collect();
    let fresh = todo.len() as u64;
    // Indexed by position in `todo`, so parallel workers write disjoint
    // slots and the merged outcome is order-independent.
    let mut results: Vec<Option<(Result<f64, EvalError>, u64)>> = vec![None; todo.len()];
    if let Some(dispatch) = ctx.dispatch {
        let tasks: Vec<&Configuration> = todo.iter().map(|&i| &configs[i]).collect();
        let outcomes = dispatch.eval_batch(space, &tasks, instance, &settings.retry);
        assert_eq!(
            outcomes.len(),
            tasks.len(),
            "dispatch backend must return one outcome per task"
        );
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            results[slot] = Some(outcome);
        }
    } else if ctx.threads <= 1 || todo.len() <= 1 {
        for (slot, &i) in todo.iter().enumerate() {
            results[slot] = Some(eval_with_retry(
                cost,
                &configs[i],
                space,
                instance,
                &settings.retry,
            ));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots = parking_lot::Mutex::new(&mut results);
        crossbeam::scope(|scope| {
            for _ in 0..ctx.threads.min(todo.len()) {
                scope.spawn(|_| loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= todo.len() {
                        break;
                    }
                    let i = todo[k];
                    let r = eval_with_retry(cost, &configs[i], space, instance, &settings.retry);
                    slots.lock()[k] = Some(r);
                });
            }
        })
        // Workers cannot panic: evaluation panics are caught in
        // `eval_one` and classified as config faults.
        .expect("race evaluation worker cannot panic");
    }

    let mut retries = 0u64;
    let mut failed = Vec::new();
    let mut instance_fault = None;
    for (slot, &i) in todo.iter().enumerate() {
        let (outcome, r) = results[slot].take().expect("every task was evaluated");
        retries += r;
        match outcome {
            Ok(c) => ctx.cache.put(&configs[i], instance, c),
            Err(e) if e.is_board_side() => {
                if instance_fault.is_none() {
                    instance_fault = Some(e.reason().to_string());
                }
            }
            Err(e) => failed.push((i, e.reason().to_string())),
        }
    }
    BlockOutcome {
        fresh,
        retries,
        failed,
        instance_fault,
    }
}

/// Races `configs` across `instance_order`, eliminating statistically
/// inferior configurations as evidence accumulates and degrading
/// gracefully under evaluation faults:
///
/// * transient board faults are retried per [`RaceSettings::retry`];
/// * persistently unmeasurable instances are quarantined (skipped by this
///   and every later race sharing the [`Quarantine`]), and the block is
///   discarded so the cost matrix stays rectangular;
/// * failing configurations (panic, timeout, non-finite cost) are removed
///   with a [`RaceLogEntry::Failed`] reason instead of poisoning the rank
///   statistics.
///
/// `budget` is decremented by every fresh evaluation *attempt*; the race
/// stops when the instances or the budget run out, or when only
/// `min_survivors` remain.
///
/// # Panics
///
/// Panics if `configs` or `instance_order` is empty — both indicate a
/// caller bug, not a runtime condition.
pub fn race(
    space: &ParamSpace,
    configs: &[Configuration],
    instance_order: &[usize],
    cost: &dyn TryCostFn,
    ctx: RaceContext<'_>,
    settings: &RaceSettings,
    budget: &mut u64,
) -> RaceResult {
    assert!(!configs.is_empty(), "cannot race zero configurations");
    assert!(!instance_order.is_empty(), "cannot race on zero instances");

    let k = configs.len();
    let mut alive = vec![true; k];
    let mut alive_count = k;
    // Per-config cost history (only while alive; index-aligned rows are
    // rebuilt from scratch at elimination time).
    let mut costs: Vec<Vec<f64>> = vec![Vec::new(); k];
    let mut log = Vec::new();
    let mut evals_used = 0u64;
    let mut retries = 0u64;
    let mut blocks_used = 0usize;
    let mut quarantined = Vec::new();
    let mut aborted = false;

    for &inst in instance_order.iter() {
        if ctx.quarantine.contains(inst) {
            continue;
        }
        if let Some(cancel) = ctx.cancel {
            if cancel.load(Ordering::Relaxed) {
                aborted = true;
                break;
            }
        }
        if *budget < alive_count as u64 || alive_count == 0 {
            break;
        }
        let t_sim = ctx.prof.map(|_| Instant::now());
        let block = evaluate_block(space, configs, &alive, inst, cost, ctx, settings);
        if let (Some(p), Some(t)) = (ctx.prof, t_sim) {
            p.simulate.add(block.fresh, t.elapsed().as_nanos() as u64);
        }
        *budget = budget.saturating_sub(block.fresh);
        evals_used += block.fresh;
        retries += block.retries;

        if let Some(reason) = block.instance_fault {
            // Board-side fault: the instance, not any configuration, is
            // to blame. Quarantine it and discard the whole block so the
            // per-config cost rows stay aligned.
            ctx.quarantine.insert(inst, reason.clone());
            quarantined.push((inst, reason));
            continue;
        }
        for (i, reason) in block.failed {
            alive[i] = false;
            alive_count -= 1;
            log.push(RaceLogEntry::Failed {
                config: i,
                after_blocks: blocks_used,
                reason,
            });
        }
        blocks_used += 1;
        for (i, row) in costs.iter_mut().enumerate() {
            if alive[i] {
                // `peek`, not `get`: this re-read was already accounted
                // for by the pre-evaluation lookup above.
                row.push(
                    ctx.cache
                        .peek(&configs[i], inst)
                        .expect("alive configs evaluated or cached above"),
                );
            }
        }
        if alive_count == 0 {
            break;
        }

        if blocks_used < settings.first_test || alive_count <= settings.min_survivors {
            continue;
        }

        let t_rank = ctx.prof.map(|_| Instant::now());
        // Build the blocks × alive-configs matrix. Rows of configurations
        // that failed mid-race are shorter than `blocks_used`; only alive
        // configurations (full rows) enter the statistics.
        let alive_idx: Vec<usize> = (0..k).filter(|&i| alive[i]).collect();
        let matrix: Vec<Vec<f64>> = (0..blocks_used)
            .map(|b| alive_idx.iter().map(|&i| costs[i][b]).collect())
            .collect();

        // Gate: does any configuration differ at all?
        let gate_passed = match settings.test {
            EliminationTest::Friedman => friedman_test(&matrix)
                .map(|o| o.p_value < settings.alpha)
                .unwrap_or(false),
            EliminationTest::PairedT => true,
        };
        if !gate_passed {
            if let (Some(p), Some(t)) = (ctx.prof, t_rank) {
                p.rank.add(1, t.elapsed().as_nanos() as u64);
            }
            continue;
        }

        // Pairwise comparison of every alive config against the leader.
        let best_local = (0..alive_idx.len())
            .min_by(|&a, &b| {
                mean(&costs[alive_idx[a]])
                    .partial_cmp(&mean(&costs[alive_idx[b]]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one alive config");
        let best = alive_idx[best_local];

        let mut to_kill: Vec<(usize, f64)> = Vec::new();
        for &j in &alive_idx {
            if j == best {
                continue;
            }
            let worse = mean(&costs[j]) > mean(&costs[best]);
            let p = match settings.test {
                EliminationTest::Friedman => wilcoxon_signed_rank(&costs[j], &costs[best])
                    .map(|(_, p)| p)
                    .unwrap_or(1.0),
                EliminationTest::PairedT => paired_t_test(&costs[j], &costs[best])
                    .map(|(_, p)| p)
                    .unwrap_or(1.0),
            };
            if worse && p < settings.alpha {
                to_kill.push((j, mean(&costs[j])));
            }
        }
        if let (Some(p), Some(t)) = (ctx.prof, t_rank) {
            p.rank.add(1, t.elapsed().as_nanos() as u64);
        }
        let t_elim = ctx.prof.map(|_| Instant::now());
        // Respect the survivor floor: spare the best of the condemned.
        let max_kills = alive_count.saturating_sub(settings.min_survivors);
        if to_kill.len() > max_kills {
            to_kill.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            to_kill.truncate(max_kills);
        }
        for (j, _) in to_kill {
            alive[j] = false;
            alive_count -= 1;
            log.push(RaceLogEntry::Eliminated {
                config: j,
                after_blocks: blocks_used,
            });
        }
        if let (Some(p), Some(t)) = (ctx.prof, t_elim) {
            p.eliminate.add(1, t.elapsed().as_nanos() as u64);
        }
        if alive_count <= settings.min_survivors {
            // Keep racing only to refine the ranking if instances remain;
            // irace stops the race here, and so do we.
            break;
        }
    }

    // A survivor with no completed blocks (every instance quarantined
    // before any evidence accumulated) has an *unknown* cost, not a
    // perfect one: report NaN rather than `mean(&[]) == 0`.
    let score = |i: usize| {
        if costs[i].is_empty() {
            f64::NAN
        } else {
            mean(&costs[i])
        }
    };
    let mut survivors: Vec<usize> = (0..k).filter(|&i| alive[i]).collect();
    survivors.sort_by(|&a, &b| {
        score(a)
            .partial_cmp(&score(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let survivor_costs = survivors.iter().map(|&i| score(i)).collect();
    RaceResult {
        survivors,
        survivor_costs,
        blocks_used,
        evals_used,
        log,
        retries,
        quarantined,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::CostFn;

    struct SyntheticCost;

    impl CostFn for SyntheticCost {
        fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
            // True optimum at x = 0; instances add config-independent noise
            // plus a small interaction so rankings are mostly stable.
            let x = cfg.integer(space, "x") as f64;
            x * x + (instance as f64 % 7.0) + 0.01 * x * (instance as f64 % 3.0)
        }
    }

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[0, 1, 2, 4, 8, 16]);
        s
    }

    fn configs(space: &ParamSpace) -> Vec<Configuration> {
        [0i64, 1, 2, 4, 8, 16]
            .iter()
            .map(|&v| {
                let mut c = space.default_configuration();
                c.set_integer(space, "x", v);
                c
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        s: &ParamSpace,
        cfgs: &[Configuration],
        order: &[usize],
        cost: &dyn TryCostFn,
        cache: &CostCache,
        quarantine: &Quarantine,
        settings: &RaceSettings,
        budget: &mut u64,
        threads: usize,
    ) -> RaceResult {
        race(
            s,
            cfgs,
            order,
            cost,
            RaceContext {
                cache,
                quarantine,
                cancel: None,
                threads,
                dispatch: None,
                prof: None,
            },
            settings,
            budget,
        )
    }

    #[test]
    fn race_eliminates_bad_configs_and_keeps_the_best() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 10_000u64;
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.survivors[0], 0, "x=0 wins");
        assert!(!r.log.is_empty(), "bad configs were eliminated");
        assert!(r.evals_used < 6 * 20, "elimination saves evaluations");
        assert!(budget < 10_000);
        assert_eq!(r.retries, 0);
        assert!(r.quarantined.is_empty());
        assert!(!r.aborted);
    }

    #[test]
    fn elimination_respects_the_survivor_floor() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 10_000u64;
        let settings = RaceSettings {
            min_survivors: 4,
            ..RaceSettings::default()
        };
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &settings,
            &mut budget,
            1,
        );
        assert!(r.survivors.len() >= 4);
    }

    #[test]
    fn tight_budget_stops_the_race_early() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 13u64; // two full blocks of 6, then starve
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.blocks_used, 2);
        assert_eq!(r.evals_used, 12);
    }

    #[test]
    fn identical_configs_are_never_eliminated() {
        let s = space();
        let c = s.default_configuration();
        let cfgs = vec![c.clone(), c.clone(), c];
        let order: Vec<usize> = (0..10).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 1000u64;
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert_eq!(r.survivors.len(), 3, "ties must survive");
        // Identical configs share cache entries: only one eval per block.
        assert_eq!(r.evals_used, 10);
    }

    #[test]
    fn paired_t_variant_also_finds_the_optimum() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 10_000u64;
        let settings = RaceSettings {
            test: EliminationTest::PairedT,
            ..RaceSettings::default()
        };
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &settings,
            &mut budget,
            1,
        );
        assert_eq!(r.survivors[0], 0);
    }

    #[test]
    fn parallel_racing_matches_serial() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let mut b1 = 10_000u64;
        let mut b2 = 10_000u64;
        let r1 = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &Quarantine::new(),
            &RaceSettings::default(),
            &mut b1,
            1,
        );
        let r2 = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &Quarantine::new(),
            &RaceSettings::default(),
            &mut b2,
            4,
        );
        assert_eq!(r1.survivors, r2.survivors);
        assert_eq!(r1.evals_used, r2.evals_used);
    }

    #[test]
    fn dispatch_backend_matches_the_inline_path() {
        #[derive(Debug)]
        struct LocalDispatch;
        impl EvalDispatch for LocalDispatch {
            fn eval_batch(
                &self,
                space: &ParamSpace,
                tasks: &[&Configuration],
                instance: usize,
                retry: &RetryPolicy,
            ) -> Vec<(Result<f64, EvalError>, u64)> {
                tasks
                    .iter()
                    .map(|cfg| eval_with_retry(&SyntheticCost, cfg, space, instance, retry))
                    .collect()
            }
        }
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let mut b1 = 10_000u64;
        let inline = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &Quarantine::new(),
            &RaceSettings::default(),
            &mut b1,
            1,
        );
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut b2 = 10_000u64;
        let dispatched = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            RaceContext {
                cache: &cache,
                quarantine: &q,
                cancel: None,
                threads: 1,
                dispatch: Some(&LocalDispatch),
                prof: None,
            },
            &RaceSettings::default(),
            &mut b2,
        );
        assert_eq!(inline.survivors, dispatched.survivors);
        assert_eq!(inline.evals_used, dispatched.evals_used);
        assert_eq!(b1, b2);
        for (a, b) in inline.survivor_costs.iter().zip(&dispatched.survivor_costs) {
            assert_eq!(a.to_bits(), b.to_bits(), "costs must be bit-identical");
        }
    }

    #[test]
    fn quarantined_instances_are_skipped_up_front() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..10).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        q.insert(0, "known dead");
        q.insert(5, "known dead");
        let mut budget = 10_000u64;
        let r = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &cache,
            &q,
            &RaceSettings::default(),
            &mut budget,
            1,
        );
        assert!(r.blocks_used <= 8, "two of ten instances are quarantined");
        for inst in [0usize, 5] {
            for c in &cfgs {
                assert_eq!(cache.get(c, inst), None, "no budget spent on {inst}");
            }
        }
    }

    #[test]
    fn profiling_records_race_phases_without_changing_the_outcome() {
        use racesim_telemetry::Profiler;
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let mut plain_budget = 10_000u64;
        let plain = run(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            &CostCache::new(),
            &Quarantine::new(),
            &RaceSettings::default(),
            &mut plain_budget,
            1,
        );

        let profiler = Profiler::enabled();
        let prof = RaceProf::new(&profiler.timer("race"));
        let cache = CostCache::new();
        let q = Quarantine::new();
        let mut budget = 10_000u64;
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            RaceContext {
                cache: &cache,
                quarantine: &q,
                cancel: None,
                threads: 1,
                dispatch: None,
                prof: Some(&prof),
            },
            &RaceSettings::default(),
            &mut budget,
        );
        assert_eq!(
            r.survivors, plain.survivors,
            "profiling is observation-only"
        );
        assert_eq!(r.evals_used, plain.evals_used);

        let snap = profiler.snapshot();
        let sim = snap
            .find(&["race", "simulate"])
            .expect("simulate phase recorded");
        assert_eq!(sim.count, r.evals_used, "count tracks fresh evaluations");
        let rank = snap.find(&["race", "rank"]).expect("rank phase recorded");
        assert!(rank.count > 0, "the statistical test ran at least once");
        let elim = snap
            .find(&["race", "eliminate"])
            .expect("eliminate phase recorded");
        assert!(elim.count > 0, "this race eliminates configurations");
    }

    #[test]
    fn cancellation_aborts_between_blocks() {
        let s = space();
        let cfgs = configs(&s);
        let order: Vec<usize> = (0..20).collect();
        let cache = CostCache::new();
        let q = Quarantine::new();
        let cancel = AtomicBool::new(true);
        let mut budget = 10_000u64;
        let r = race(
            &s,
            &cfgs,
            &order,
            &SyntheticCost,
            RaceContext {
                cache: &cache,
                quarantine: &q,
                cancel: Some(&cancel),
                threads: 1,
                dispatch: None,
                prof: None,
            },
            &RaceSettings::default(),
            &mut budget,
        );
        assert!(r.aborted);
        assert_eq!(r.blocks_used, 0);
        assert_eq!(budget, 10_000);
    }
}
