//! Deterministic campaign replay: digest a recorded journal into the
//! deterministic skeleton of the campaign, digest a fresh re-run the
//! same way, and compare the two **bit for bit**.
//!
//! What is compared (all deterministic given seed, space, suite and
//! fault plan — see the determinism audit, RA5xx):
//!
//! * campaign setup: seed, budget, instance and parameter counts;
//! * per iteration: candidate count, survivors, best cost (as f64
//!   bits), evaluations spent, blocks raced;
//! * elimination order within each iteration (configuration, kind,
//!   blocks survived, reason);
//! * quarantined instances;
//! * campaign totals: best cost bits, evaluations, failed and pruned
//!   configurations.
//!
//! What is deliberately **not** compared: wall-clock fields (`micros`,
//! `t`), the interleaving of `evaluation`/`measurement`/`fault` events
//! (thread-schedule dependent), `checkpoint`/`resume` bookkeeping, and —
//! for journals spanning multiple resumed segments — the `retries`
//! total, because a resumed process re-measures instances whose
//! measurements only lived in its predecessor's memory, repeating their
//! transient-fault retries.
//!
//! A journal may contain several segments (checkpoint → kill → resume
//! appends). The digest merges them: iterations are keyed by number with
//! the **last** occurrence winning (a killed partial iteration is redone
//! by the resumed segment), an `iteration_start` without a matching
//! `iteration_end` is discarded (the tuner discards that work too), and
//! quarantines are deduplicated by instance.

use racesim_telemetry::{Event, JournalEntry};
use std::collections::BTreeMap;
use std::fmt;

use crate::param::{Domain, ParamSpace, Value};

/// Encodes one frozen value in checkpoint code form (`C<i>`, `I<i>`,
/// `F0`/`F1`) for the `frozen` journal event.
pub fn encode_value(v: Value) -> String {
    match v {
        Value::Cat(k) => format!("C{k}"),
        Value::Int(k) => format!("I{k}"),
        Value::Flag(b) => format!("F{}", u8::from(b)),
    }
}

/// Decodes a frozen-value code against one parameter of `space`,
/// rejecting codes whose kind or index does not fit the domain.
pub fn decode_value(space: &ParamSpace, param: &str, code: &str) -> Result<Value, String> {
    let idx = space
        .try_index_of(param)
        .ok_or_else(|| format!("frozen parameter {param:?} is not in the space"))?;
    let (kind, rest) = code.split_at(if code.is_empty() { 0 } else { 1 });
    let domain = &space.params()[idx].domain;
    let index = || {
        rest.parse::<usize>()
            .map_err(|_| format!("bad frozen code {code:?} for {param:?}"))
    };
    match (kind, domain) {
        ("C", Domain::Categorical(cs)) => {
            let k = index()?;
            if k >= cs.len() {
                return Err(format!("frozen index {k} out of range for {param:?}"));
            }
            Ok(Value::Cat(k as u16))
        }
        ("I", Domain::Integer(vs)) => {
            let k = index()?;
            if k >= vs.len() {
                return Err(format!("frozen index {k} out of range for {param:?}"));
            }
            Ok(Value::Int(k as u16))
        }
        ("F", Domain::Bool) => Ok(Value::Flag(rest == "1")),
        _ => Err(format!(
            "frozen code {code:?} does not fit parameter {param:?}"
        )),
    }
}

/// One elimination, in journal order within its iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EliminationRecord {
    /// Rendered configuration.
    pub config: String,
    /// `statistical`, `failed`, `pruned` or `static`.
    pub kind: String,
    /// Instance blocks survived before elimination.
    pub after_blocks: usize,
    /// Detail string.
    pub reason: String,
}

/// The deterministic skeleton of one completed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Candidate configurations entering the race.
    pub configs: usize,
    /// Configurations alive after elimination.
    pub survivors: usize,
    /// Best campaign cost so far, as raw f64 bits.
    pub best_cost_bits: u64,
    /// Evaluations spent in this iteration.
    pub evals: usize,
    /// Instance blocks raced.
    pub blocks: usize,
    /// Eliminations in journal order.
    pub eliminations: Vec<EliminationRecord>,
}

/// The deterministic campaign totals from `campaign_end`.
#[derive(Debug, Clone, PartialEq)]
pub struct EndRecord {
    /// Best cost found, as raw f64 bits.
    pub best_cost_bits: u64,
    /// Total evaluations (cumulative across resumes).
    pub evals: usize,
    /// Total transient retries (NOT comparable across resumed journals).
    pub retries: usize,
    /// Configurations eliminated by persistent failures.
    pub failed_configs: usize,
    /// Configurations pruned before racing.
    pub pruned: usize,
    /// Whether the segment ended by cancellation.
    pub aborted: bool,
}

/// A journal digested down to the deterministic skeleton replay
/// verifies against.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedCampaign {
    /// RNG seed.
    pub seed: u64,
    /// Evaluation budget.
    pub budget: usize,
    /// Benchmark instances in the suite.
    pub n_instances: usize,
    /// Tunable parameters.
    pub n_params: usize,
    /// Process segments merged into this record.
    pub segments: usize,
    /// True when any segment ran under an iteration cap (staged run) —
    /// such a journal may be a prefix of the full campaign.
    pub staged: bool,
    /// Completed iterations, keyed by iteration number.
    pub iterations: BTreeMap<usize, IterationRecord>,
    /// Quarantined instances (instance → reason), deduplicated.
    pub quarantines: BTreeMap<String, String>,
    /// Totals from the last `campaign_end`, if any.
    pub end: Option<EndRecord>,
    /// Digest-time observations (discarded partial iterations, ...).
    pub notes: Vec<String>,
}

impl RecordedCampaign {
    /// Digests journal entries into the comparable skeleton, merging
    /// resumed segments. Fails only when the journal contains no
    /// `campaign_start` at all.
    pub fn digest(entries: &[JournalEntry]) -> Result<RecordedCampaign, String> {
        let mut setup: Option<(u64, usize, usize, usize)> = None;
        let mut segments = 0usize;
        let mut staged = false;
        let mut iterations = BTreeMap::new();
        let mut quarantines = BTreeMap::new();
        let mut end = None;
        let mut notes = Vec::new();
        // The currently open iteration: (number, configs, eliminations).
        let mut open: Option<(usize, usize, Vec<EliminationRecord>)> = None;
        let discard_open = |open: &mut Option<(usize, usize, Vec<EliminationRecord>)>,
                            notes: &mut Vec<String>| {
            if let Some((n, ..)) = open.take() {
                notes.push(format!(
                    "iteration {n} has no iteration_end (killed mid-race?); \
                     discarded, as the tuner discards that work on resume"
                ));
            }
        };
        for e in entries {
            match &e.event {
                Event::CampaignStart {
                    seed,
                    budget,
                    n_instances,
                    n_params,
                } => {
                    discard_open(&mut open, &mut notes);
                    segments += 1;
                    if setup.is_none() {
                        setup = Some((*seed, *budget, *n_instances, *n_params));
                    }
                }
                Event::CampaignConfig { max_iterations, .. } => {
                    staged |= *max_iterations != 0;
                }
                Event::IterationStart { iteration, configs } => {
                    discard_open(&mut open, &mut notes);
                    open = Some((*iteration, *configs, Vec::new()));
                }
                Event::Elimination {
                    config,
                    kind,
                    after_blocks,
                    reason,
                } => {
                    if let Some((_, _, elims)) = &mut open {
                        elims.push(EliminationRecord {
                            config: config.clone(),
                            kind: kind.clone(),
                            after_blocks: *after_blocks,
                            reason: reason.clone(),
                        });
                    }
                }
                Event::StaticEliminated {
                    config,
                    lower_bound,
                    incumbent_cost,
                    ..
                } => {
                    // Folded into the elimination stream with the bound
                    // and incumbent as raw f64 bits, so a replay that
                    // computes even a one-ulp different bound diverges.
                    if let Some((_, _, elims)) = &mut open {
                        elims.push(EliminationRecord {
                            config: config.clone(),
                            kind: "static".to_string(),
                            after_blocks: 0,
                            reason: format!(
                                "lb={:016x} incumbent={:016x}",
                                lower_bound.to_bits(),
                                incumbent_cost.to_bits()
                            ),
                        });
                    }
                }
                Event::Quarantine { instance, reason } => {
                    quarantines.insert(instance.clone(), reason.clone());
                }
                Event::IterationEnd {
                    iteration,
                    survivors,
                    best_cost,
                    evals,
                    blocks,
                    ..
                } => match open.take() {
                    Some((n, configs, eliminations)) if n == *iteration => {
                        iterations.insert(
                            *iteration,
                            IterationRecord {
                                configs,
                                survivors: *survivors,
                                best_cost_bits: best_cost.to_bits(),
                                evals: *evals,
                                blocks: *blocks,
                                eliminations,
                            },
                        );
                    }
                    other => {
                        open = other;
                        discard_open(&mut open, &mut notes);
                        notes.push(format!(
                            "iteration_end {iteration} without a matching start; ignored"
                        ));
                    }
                },
                Event::CampaignEnd {
                    best_cost,
                    evals,
                    retries,
                    failed_configs,
                    pruned,
                    aborted,
                    ..
                } => {
                    discard_open(&mut open, &mut notes);
                    end = Some(EndRecord {
                        best_cost_bits: best_cost.to_bits(),
                        evals: *evals,
                        retries: *retries,
                        failed_configs: *failed_configs,
                        pruned: *pruned,
                        aborted: *aborted,
                    });
                }
                _ => {}
            }
        }
        discard_open(&mut open, &mut notes);
        let (seed, budget, n_instances, n_params) =
            setup.ok_or_else(|| "journal contains no campaign_start event".to_string())?;
        Ok(RecordedCampaign {
            seed,
            budget,
            n_instances,
            n_params,
            segments,
            staged,
            iterations,
            quarantines,
            end,
            notes,
        })
    }
}

/// The first recorded/replayed mismatch, pinpointed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Where it happened (`campaign_start`, `iteration 3`,
    /// `iteration 3 / elimination 2`, `quarantine`, `campaign_end`).
    pub location: String,
    /// Which field differs.
    pub field: String,
    /// The recorded value.
    pub recorded: String,
    /// The replayed value.
    pub replayed: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}: recorded {} vs replayed {}",
            self.location, self.field, self.recorded, self.replayed
        )
    }
}

/// Outcome of comparing a recording against its replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every compared field is bit-identical and the campaigns cover
    /// the same iterations.
    Match,
    /// The recording is an incomplete (staged or aborted) campaign and
    /// every recorded iteration matched the replay's prefix exactly.
    PrefixMatch,
    /// A mismatch was found; see [`ReplayReport::divergence`].
    Diverged,
}

impl Verdict {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Match => "match",
            Verdict::PrefixMatch => "prefix",
            Verdict::Diverged => "diverged",
        }
    }
}

/// The structured result of a replay comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Overall outcome.
    pub verdict: Verdict,
    /// Segments in the recording.
    pub segments: usize,
    /// Iterations in the recording / the replay.
    pub iterations_recorded: usize,
    /// Iterations the replay executed.
    pub iterations_replayed: usize,
    /// Iterations compared field-by-field.
    pub iterations_checked: usize,
    /// Eliminations compared field-by-field.
    pub eliminations_checked: usize,
    /// Recorded final best cost bits (if the recording has an end).
    pub best_cost_recorded: Option<u64>,
    /// Replayed final best cost bits.
    pub best_cost_replayed: Option<u64>,
    /// The first mismatch, when `verdict` is [`Verdict::Diverged`].
    pub divergence: Option<Divergence>,
    /// Human-readable observations (skipped comparisons, digests' notes).
    pub notes: Vec<String>,
}

/// Compares a recorded campaign against its replay, stopping at the
/// first mismatch. `recorded.notes` and `replayed.notes` are folded into
/// the report.
pub fn compare(recorded: &RecordedCampaign, replayed: &RecordedCampaign) -> ReplayReport {
    let mut notes: Vec<String> = Vec::new();
    notes.extend(recorded.notes.iter().map(|n| format!("recorded: {n}")));
    notes.extend(replayed.notes.iter().map(|n| format!("replayed: {n}")));
    let iterations_checked = std::cell::Cell::new(0usize);
    let eliminations_checked = std::cell::Cell::new(0usize);
    let report = |verdict, divergence, notes: Vec<String>| ReplayReport {
        verdict,
        segments: recorded.segments,
        iterations_recorded: recorded.iterations.len(),
        iterations_replayed: replayed.iterations.len(),
        iterations_checked: iterations_checked.get(),
        eliminations_checked: eliminations_checked.get(),
        best_cost_recorded: recorded.end.as_ref().map(|e| e.best_cost_bits),
        best_cost_replayed: replayed.end.as_ref().map(|e| e.best_cost_bits),
        divergence,
        notes,
    };
    let diverged = |location: &str, field: &str, rec: String, rep: String| {
        Some(Divergence {
            location: location.to_string(),
            field: field.to_string(),
            recorded: rec,
            replayed: rep,
        })
    };

    // Campaign setup must agree exactly.
    for (field, rec, rep) in [
        ("seed", recorded.seed, replayed.seed),
        ("budget", recorded.budget as u64, replayed.budget as u64),
        (
            "n_instances",
            recorded.n_instances as u64,
            replayed.n_instances as u64,
        ),
        (
            "n_params",
            recorded.n_params as u64,
            replayed.n_params as u64,
        ),
    ] {
        if rec != rep {
            let d = diverged("campaign_start", field, rec.to_string(), rep.to_string());
            return report(Verdict::Diverged, d, notes);
        }
    }

    // Every recorded iteration must match the replayed one exactly.
    for (n, rec) in &recorded.iterations {
        let loc = format!("iteration {n}");
        let Some(rep) = replayed.iterations.get(n) else {
            let d = diverged(&loc, "present", "yes".into(), "missing".into());
            return report(Verdict::Diverged, d, notes);
        };
        let fields = [
            ("configs", rec.configs as u64, rep.configs as u64),
            ("survivors", rec.survivors as u64, rep.survivors as u64),
            ("evals", rec.evals as u64, rep.evals as u64),
            ("blocks", rec.blocks as u64, rep.blocks as u64),
        ];
        for (field, a, b) in fields {
            if a != b {
                let d = diverged(&loc, field, a.to_string(), b.to_string());
                return report(Verdict::Diverged, d, notes);
            }
        }
        if rec.best_cost_bits != rep.best_cost_bits {
            let d = diverged(
                &loc,
                "best_cost_bits",
                format!("{:016x}", rec.best_cost_bits),
                format!("{:016x}", rep.best_cost_bits),
            );
            return report(Verdict::Diverged, d, notes);
        }
        if rec.eliminations.len() != rep.eliminations.len() {
            let d = diverged(
                &loc,
                "eliminations",
                rec.eliminations.len().to_string(),
                rep.eliminations.len().to_string(),
            );
            return report(Verdict::Diverged, d, notes);
        }
        for (i, (a, b)) in rec.eliminations.iter().zip(&rep.eliminations).enumerate() {
            let loc = format!("{loc} / elimination {i}");
            for (field, x, y) in [
                ("config", &a.config, &b.config),
                ("kind", &a.kind, &b.kind),
                ("reason", &a.reason, &b.reason),
            ] {
                if x != y {
                    let d = diverged(&loc, field, format!("{x:?}"), format!("{y:?}"));
                    return report(Verdict::Diverged, d, notes);
                }
            }
            if a.after_blocks != b.after_blocks {
                let d = diverged(
                    &loc,
                    "after_blocks",
                    a.after_blocks.to_string(),
                    b.after_blocks.to_string(),
                );
                return report(Verdict::Diverged, d, notes);
            }
            eliminations_checked.set(eliminations_checked.get() + 1);
        }
        iterations_checked.set(iterations_checked.get() + 1);
    }

    // Every recorded quarantine must be reproduced.
    for (instance, reason) in &recorded.quarantines {
        match replayed.quarantines.get(instance) {
            None => {
                let d = diverged("quarantine", instance, reason.clone(), "missing".into());
                return report(Verdict::Diverged, d, notes);
            }
            Some(r) if r != reason => {
                let d = diverged("quarantine", instance, reason.clone(), r.clone());
                return report(Verdict::Diverged, d, notes);
            }
            Some(_) => {}
        }
    }

    // Is the recording a complete campaign, or a prefix of one?
    let complete = recorded.end.as_ref().is_some_and(|e| !e.aborted)
        && recorded.iterations.len() >= replayed.iterations.len();
    if !complete {
        if recorded.staged {
            notes.push(
                "recording is a staged run (--max-iterations); verified as a prefix".to_string(),
            );
        } else if recorded.end.as_ref().is_none_or(|e| e.aborted) {
            notes.push("recording ended early (aborted or torn); verified as a prefix".to_string());
        } else {
            // A "complete" recording with fewer iterations than the
            // replay means the campaigns genuinely disagree.
            let d = diverged(
                "campaign_end",
                "iterations",
                recorded.iterations.len().to_string(),
                replayed.iterations.len().to_string(),
            );
            return report(Verdict::Diverged, d, notes);
        }
        return report(Verdict::PrefixMatch, None, notes);
    }

    // Full campaign: totals must agree (bit-for-bit on the cost).
    if let (Some(rec), Some(rep)) = (&recorded.end, &replayed.end) {
        if rec.best_cost_bits != rep.best_cost_bits {
            let d = diverged(
                "campaign_end",
                "best_cost_bits",
                format!("{:016x}", rec.best_cost_bits),
                format!("{:016x}", rep.best_cost_bits),
            );
            return report(Verdict::Diverged, d, notes);
        }
        for (field, a, b) in [
            ("evals", rec.evals, rep.evals),
            ("failed_configs", rec.failed_configs, rep.failed_configs),
            ("pruned", rec.pruned, rep.pruned),
        ] {
            if a != b {
                let d = diverged("campaign_end", field, a.to_string(), b.to_string());
                return report(Verdict::Diverged, d, notes);
            }
        }
        if recorded.segments == 1 {
            if rec.retries != rep.retries {
                let d = diverged(
                    "campaign_end",
                    "retries",
                    rec.retries.to_string(),
                    rep.retries.to_string(),
                );
                return report(Verdict::Diverged, d, notes);
            }
        } else {
            notes.push(format!(
                "retries not compared: the recording spans {} segments and resumed \
                 processes repeat re-measurement retries",
                recorded.segments
            ));
        }
    }
    report(Verdict::Match, None, notes)
}

impl ReplayReport {
    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let bits = |b: Option<u64>| match b {
            Some(b) => format!("{:016x} ({})", b, f64::from_bits(b)),
            None => "-".to_string(),
        };
        let _ = writeln!(out, "verdict:             {}", self.verdict.name());
        let _ = writeln!(out, "segments:            {}", self.segments);
        let _ = writeln!(
            out,
            "iterations:          {} recorded, {} replayed, {} checked",
            self.iterations_recorded, self.iterations_replayed, self.iterations_checked
        );
        let _ = writeln!(out, "eliminations:        {}", self.eliminations_checked);
        let _ = writeln!(
            out,
            "best cost (bits):    recorded {}",
            bits(self.best_cost_recorded)
        );
        let _ = writeln!(
            out,
            "                     replayed {}",
            bits(self.best_cost_replayed)
        );
        if let Some(d) = &self.divergence {
            let _ = writeln!(out, "FIRST DIVERGENCE at {d}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Machine-readable rendering (stable schema, `schema_version` 1).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let bits = |b: Option<u64>| match b {
            Some(b) => format!("\"{b:016x}\""),
            None => "null".to_string(),
        };
        let divergence = match &self.divergence {
            None => "null".to_string(),
            Some(d) => format!(
                "{{\"location\":{},\"field\":{},\"recorded\":{},\"replayed\":{}}}",
                esc(&d.location),
                esc(&d.field),
                esc(&d.recorded),
                esc(&d.replayed)
            ),
        };
        let notes: Vec<String> = self.notes.iter().map(|n| esc(n)).collect();
        format!(
            "{{\"schema_version\":1,\"verdict\":\"{}\",\"segments\":{},\
             \"iterations_recorded\":{},\"iterations_replayed\":{},\
             \"iterations_checked\":{},\"eliminations_checked\":{},\
             \"best_cost_recorded_bits\":{},\"best_cost_replayed_bits\":{},\
             \"divergence\":{},\"notes\":[{}]}}",
            self.verdict.name(),
            self.segments,
            self.iterations_recorded,
            self.iterations_replayed,
            self.iterations_checked,
            self.eliminations_checked,
            bits(self.best_cost_recorded),
            bits(self.best_cost_replayed),
            divergence,
            notes.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(event: Event) -> JournalEntry {
        JournalEntry { t_us: 0, event }
    }

    fn start() -> JournalEntry {
        entry(Event::CampaignStart {
            seed: 7,
            budget: 100,
            n_instances: 4,
            n_params: 3,
        })
    }

    fn iter_pair(n: usize, survivors: usize, best: f64) -> Vec<JournalEntry> {
        vec![
            entry(Event::IterationStart {
                iteration: n,
                configs: 8,
            }),
            entry(Event::Elimination {
                config: format!("cfg{n}"),
                kind: "statistical".to_string(),
                after_blocks: 2,
                reason: "friedman".to_string(),
            }),
            entry(Event::IterationEnd {
                iteration: n,
                survivors,
                best_cost: best,
                evals: 10,
                blocks: 3,
                micros: 1,
            }),
        ]
    }

    fn end(best: f64) -> JournalEntry {
        entry(Event::CampaignEnd {
            best_cost: best,
            evals: 20,
            retries: 1,
            failed_configs: 0,
            pruned: 0,
            aborted: false,
            micros: 5,
        })
    }

    fn journal(parts: Vec<Vec<JournalEntry>>) -> Vec<JournalEntry> {
        parts.into_iter().flatten().collect()
    }

    #[test]
    fn identical_journals_match() {
        let j = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            iter_pair(1, 2, 0.25),
            vec![end(0.25)],
        ]);
        let a = RecordedCampaign::digest(&j).unwrap();
        let b = RecordedCampaign::digest(&j).unwrap();
        let r = compare(&a, &b);
        assert_eq!(r.verdict, Verdict::Match, "{:?}", r.divergence);
        assert_eq!(r.iterations_checked, 2);
        assert_eq!(r.eliminations_checked, 2);
        // Single segment: retries were compared too.
        assert!(r.notes.is_empty(), "{:?}", r.notes);
    }

    #[test]
    fn timestamps_and_noise_events_do_not_affect_the_verdict() {
        let mut a = journal(vec![vec![start()], iter_pair(0, 4, 0.5), vec![end(0.5)]]);
        let mut b = a.clone();
        for (i, e) in b.iter_mut().enumerate() {
            e.t_us = 1000 + i as u64;
        }
        a.insert(
            1,
            entry(Event::Evaluation {
                workload: "MD".to_string(),
                micros: 3,
                cost: 1.0,
            }),
        );
        let ra = RecordedCampaign::digest(&a).unwrap();
        let rb = RecordedCampaign::digest(&b).unwrap();
        assert_eq!(compare(&ra, &rb).verdict, Verdict::Match);
    }

    #[test]
    fn resumed_segments_merge_with_last_iteration_winning() {
        // Segment 1: iteration 0 complete, iteration 1 torn (no end).
        // Segment 2: resumes, redoes iteration 1, finishes.
        let rec = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            vec![entry(Event::IterationStart {
                iteration: 1,
                configs: 8,
            })],
            vec![start()],
            iter_pair(1, 2, 0.25),
            vec![end(0.25)],
        ]);
        let uninterrupted = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            iter_pair(1, 2, 0.25),
            vec![end(0.25)],
        ]);
        let a = RecordedCampaign::digest(&rec).unwrap();
        assert_eq!(a.segments, 2);
        assert!(!a.notes.is_empty(), "partial iteration was noted");
        let b = RecordedCampaign::digest(&uninterrupted).unwrap();
        let r = compare(&a, &b);
        assert_eq!(r.verdict, Verdict::Match, "{:?}", r.divergence);
        // Two segments: retries are not comparable and must be noted.
        assert!(r.notes.iter().any(|n| n.contains("retries")));
    }

    #[test]
    fn first_divergence_is_pinpointed() {
        let a = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            iter_pair(1, 2, 0.25),
            vec![end(0.25)],
        ]);
        let mut b = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            iter_pair(1, 3, 0.25),
            vec![end(0.25)],
        ]);
        let ra = RecordedCampaign::digest(&a).unwrap();
        let rb = RecordedCampaign::digest(&b).unwrap();
        let r = compare(&ra, &rb);
        assert_eq!(r.verdict, Verdict::Diverged);
        let d = r.divergence.expect("has divergence");
        assert_eq!(d.location, "iteration 1");
        assert_eq!(d.field, "survivors");
        assert_eq!(d.recorded, "2");
        assert_eq!(d.replayed, "3");
        // The earlier, matching iteration was checked before the stop.
        assert_eq!(r.iterations_checked, 1);

        // A one-ulp cost nudge is caught by the bit comparison.
        b = a.clone();
        if let Event::IterationEnd { best_cost, .. } = &mut b[6].event {
            *best_cost = f64::from_bits(best_cost.to_bits() + 1);
        } else {
            panic!("expected iteration_end at index 6");
        }
        let rb = RecordedCampaign::digest(&b).unwrap();
        let r = compare(&ra, &rb);
        assert_eq!(r.verdict, Verdict::Diverged);
        assert_eq!(r.divergence.unwrap().field, "best_cost_bits");
    }

    #[test]
    fn staged_recording_is_a_prefix_of_the_full_campaign() {
        let staged = journal(vec![
            vec![
                start(),
                entry(Event::CampaignConfig {
                    core: "a53".to_string(),
                    scale: 2048,
                    faults: "none".to_string(),
                    fault_seed: 1,
                    timeout_ms: 0,
                    threads: 1,
                    workers: 0,
                    max_iterations: 1,
                    static_bounds: false,
                }),
            ],
            iter_pair(0, 4, 0.5),
            vec![end(0.5)],
        ]);
        let full = journal(vec![
            vec![start()],
            iter_pair(0, 4, 0.5),
            iter_pair(1, 2, 0.25),
            vec![end(0.25)],
        ]);
        let a = RecordedCampaign::digest(&staged).unwrap();
        assert!(a.staged);
        let b = RecordedCampaign::digest(&full).unwrap();
        let r = compare(&a, &b);
        assert_eq!(r.verdict, Verdict::PrefixMatch, "{:?}", r.divergence);

        // Without the staging marker the same shape is a divergence.
        let unstaged = journal(vec![vec![start()], iter_pair(0, 4, 0.5), vec![end(0.5)]]);
        let a = RecordedCampaign::digest(&unstaged).unwrap();
        let r = compare(&a, &b);
        assert_eq!(r.verdict, Verdict::Diverged);
        assert_eq!(r.divergence.unwrap().location, "campaign_end");
    }

    #[test]
    fn static_eliminations_are_compared_bit_for_bit() {
        let static_elim = |lb: f64| {
            entry(Event::StaticEliminated {
                config: "mode=a depth=2".to_string(),
                iteration: 0,
                lower_bound: lb,
                incumbent_cost: 1.5,
            })
        };
        let with_bound = |lb: f64| {
            let mut j = journal(vec![vec![start()], iter_pair(0, 4, 0.5), vec![end(0.5)]]);
            j.insert(2, static_elim(lb));
            j
        };
        let a = RecordedCampaign::digest(&with_bound(7.25)).unwrap();
        assert_eq!(a.iterations[&0].eliminations.len(), 2);
        assert_eq!(a.iterations[&0].eliminations[0].kind, "static");
        let b = RecordedCampaign::digest(&with_bound(7.25)).unwrap();
        assert_eq!(compare(&a, &b).verdict, Verdict::Match);

        // One ulp of difference in the recomputed bound diverges.
        let c =
            RecordedCampaign::digest(&with_bound(f64::from_bits(7.25f64.to_bits() + 1))).unwrap();
        let r = compare(&a, &c);
        assert_eq!(r.verdict, Verdict::Diverged);
        assert_eq!(r.divergence.unwrap().field, "reason");
    }

    #[test]
    fn json_report_has_the_stable_schema() {
        let j = journal(vec![vec![start()], iter_pair(0, 4, 0.5), vec![end(0.5)]]);
        let a = RecordedCampaign::digest(&j).unwrap();
        let r = compare(&a, &a.clone());
        let json = r.render_json();
        for key in [
            "\"schema_version\":1",
            "\"verdict\":\"match\"",
            "\"segments\":",
            "\"iterations_recorded\":",
            "\"iterations_replayed\":",
            "\"iterations_checked\":",
            "\"eliminations_checked\":",
            "\"best_cost_recorded_bits\":",
            "\"best_cost_replayed_bits\":",
            "\"divergence\":null",
            "\"notes\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn value_codes_roundtrip_against_a_space() {
        let mut space = ParamSpace::new();
        space.add_categorical("mode", &["a", "b", "c"]);
        space.add_integer("depth", &[1, 2, 4]);
        space.add_bool("boost");
        for (param, v) in [
            ("mode", Value::Cat(2)),
            ("depth", Value::Int(0)),
            ("boost", Value::Flag(true)),
        ] {
            let code = encode_value(v);
            assert_eq!(decode_value(&space, param, &code).unwrap(), v);
        }
        assert!(decode_value(&space, "mode", "C9").is_err());
        assert!(decode_value(&space, "mode", "F1").is_err());
        assert!(decode_value(&space, "nope", "C0").is_err());
        assert!(decode_value(&space, "boost", "").is_err());
    }
}
