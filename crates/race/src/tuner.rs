//! The iterated-racing loop.

use crate::cache::CostCache;
use crate::checkpoint::TunerCheckpoint;
use crate::error::{EvalError, Quarantine};
use crate::model::SamplingModel;
use crate::param::{Configuration, ParamSpace, Value};
use crate::race::{race, EvalDispatch, RaceContext, RaceLogEntry, RaceProf, RaceSettings};
use racesim_telemetry::{Event, Profiler, Telemetry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// An infallible cost function the tuner minimises.
///
/// In the paper's setting, the cost of a configuration on an instance is
/// the simulator's CPI-prediction error against the hardware measurement
/// for one micro-benchmark. Pure simulation against pre-recorded
/// measurements cannot fail; cost functions that talk to live hardware
/// (or can hang, panic, or produce non-finite CPI) should implement
/// [`TryCostFn`] instead — every [`CostFn`] is automatically a
/// [`TryCostFn`] whose non-finite results are rejected as
/// [`EvalError::Config`] faults.
pub trait CostFn: Sync {
    /// The cost of `cfg` on benchmark `instance` (lower is better).
    fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64;
}

impl<F> CostFn for F
where
    F: Fn(&Configuration, &ParamSpace, usize) -> f64 + Sync,
{
    fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
        self(cfg, space, instance)
    }
}

/// A fallible cost function: what the racing layer actually consumes.
///
/// Failures are classified by [`EvalError`] into board-side faults
/// (retried, then the *instance* is quarantined) and config-side faults
/// (the *configuration* is eliminated with a logged reason). Every
/// [`CostFn`] implements this trait via a blanket adapter that rejects
/// non-finite costs at the boundary.
pub trait TryCostFn: Sync {
    /// The cost of `cfg` on benchmark `instance`, or a classified fault.
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError>;
}

impl<C: CostFn + ?Sized> TryCostFn for C {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let c = self.cost(cfg, space, instance);
        if c.is_finite() {
            Ok(c)
        } else {
            Err(EvalError::Config(format!("non-finite cost {c}")))
        }
    }
}

/// A pre-simulation eliminator: proves sound lower bounds on a
/// configuration's suite-wide mean cost without running the simulator.
///
/// When installed with [`RacingTuner::with_static_bounds`], each
/// iteration drops every freshly sampled configuration whose lower bound
/// already exceeds the incumbent elite's recorded cost — the race result
/// cannot depend on it, so no budget is spent simulating it. The tuner
/// knows nothing about how the bound is computed; `racesim-core` adapts
/// the static CPI bounds engine from `racesim-analyzer` onto this trait.
pub trait StaticBounds: Send + Sync {
    /// A sound lower bound on the suite-wide mean cost of `cfg`, or
    /// `None` when no bound can be proved (the configuration then races
    /// normally).
    fn cost_lower_bound(&self, space: &ParamSpace, cfg: &Configuration) -> Option<f64>;
}

/// Adapts a `&dyn CostFn` (unsized, so the blanket impl's trait-object
/// coercion cannot apply) into a [`TryCostFn`].
struct Fallible<'a>(&'a dyn CostFn);

impl TryCostFn for Fallible<'_> {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        self.0.try_cost(cfg, space, instance)
    }
}

/// Settings of the iterated-racing tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerSettings {
    /// Maximum fresh cost evaluations ("the algorithm stops after a
    /// configurable maximum number of trials"; the paper budgets 10 K to
    /// 100 K).
    pub budget: u64,
    /// Race settings (significance level, first test, survivor floor,
    /// retry policy).
    pub race: RaceSettings,
    /// Elites kept between iterations.
    pub n_elites: usize,
    /// Worker threads for parallel evaluation.
    pub threads: usize,
    /// RNG seed — runs are fully deterministic given the seed.
    pub seed: u64,
    /// Optional wall-clock limit: the tuner starts no new iteration after
    /// this many seconds ("the user can define criteria to terminate the
    /// tuning process, e.g. … a maximum finite time"). Measured from the
    /// start of the current process — a resumed run restarts the clock.
    pub max_seconds: Option<u64>,
    /// Optional cap on iterations run *in this process*. The natural
    /// iteration count (`2 + ⌊log₂ #params⌋`) still bounds the schedule;
    /// this stops earlier — after the checkpoint for the last completed
    /// iteration is written — which makes deterministic kill-and-resume
    /// tests (and operator-driven staged runs) possible.
    pub max_iterations: Option<usize>,
}

impl Default for TunerSettings {
    fn default() -> TunerSettings {
        TunerSettings {
            budget: 2_000,
            race: RaceSettings::default(),
            n_elites: 4,
            threads: 1,
            seed: 0xBADC_AB1E,
            max_seconds: None,
            max_iterations: None,
        }
    }
}

/// Summary of one tuner iteration, for reporting and Figure-2-style
/// plots.
#[derive(Debug, Clone)]
pub struct IterationSummary {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Configurations raced.
    pub configs_raced: usize,
    /// Instances (blocks) the race consumed.
    pub blocks_used: usize,
    /// Fresh evaluations consumed.
    pub evals_used: u64,
    /// Best mean cost seen at the end of the iteration.
    pub best_cost: f64,
    /// Elimination/failure log of the race.
    pub eliminations: Vec<RaceLogEntry>,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The best configuration found.
    pub best: Configuration,
    /// Its mean cost over the instances it was raced on.
    pub best_cost: f64,
    /// The final elite set, best first.
    pub elites: Vec<(Configuration, f64)>,
    /// Fresh evaluations actually used.
    pub evals_used: u64,
    /// Sampled configurations rejected by the pruner before any
    /// simulation was spent on them.
    pub pruned: u64,
    /// Per-iteration summaries.
    pub history: Vec<IterationSummary>,
    /// Instances quarantined as unmeasurable, with reasons.
    pub quarantined: Vec<(usize, String)>,
    /// Configurations eliminated because their evaluation failed.
    pub failed_configs: u64,
    /// Transient-fault retries performed.
    pub retries: u64,
    /// True when the run was cancelled before its schedule completed.
    pub aborted: bool,
    /// Configurations eliminated by the static bounds engine before any
    /// simulation was spent on them.
    pub static_eliminated: u64,
    /// Cost-cache lookups answered from the cache (evaluations avoided).
    pub cache_hits: u64,
    /// Cost-cache lookups that required a fresh evaluation.
    pub cache_misses: u64,
    /// Non-fatal conditions worth surfacing (checkpoint I/O problems,
    /// ignored resume files).
    pub warnings: Vec<String>,
}

impl TuneResult {
    /// Fraction of cost-cache lookups answered from the cache, or 0.0
    /// when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A predicate that rejects statically unrealisable configurations before
/// the tuner spends simulation budget on them. Returns the name of the
/// violated invariant (typically a lint code from `racesim-analyzer`), or
/// `None` if the configuration is admissible.
pub type Pruner = std::sync::Arc<dyn Fn(&Configuration) -> Option<String> + Send + Sync>;

/// Anything that can search a parameter space against a cost function —
/// implemented by [`RacingTuner`] and the baselines.
pub trait Tuner {
    /// Minimises `cost` over `space`, evaluating on `n_instances`
    /// benchmark instances.
    fn tune(&self, space: &ParamSpace, cost: &dyn CostFn, n_instances: usize) -> TuneResult;
}

/// The iterated-racing tuner (irace reimplementation).
#[derive(Clone)]
pub struct RacingTuner {
    settings: TunerSettings,
    pruner: Option<Pruner>,
    frozen: Vec<(usize, Value)>,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
    cancel: Option<Arc<AtomicBool>>,
    telemetry: Telemetry,
    profiler: Profiler,
    dispatch: Option<Arc<dyn EvalDispatch + Send + Sync>>,
    static_bounds: Option<Arc<dyn StaticBounds>>,
}

impl std::fmt::Debug for RacingTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RacingTuner")
            .field("settings", &self.settings)
            .field("pruner", &self.pruner.as_ref().map(|_| "<fn>"))
            .field("frozen", &self.frozen)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .field("telemetry", &self.telemetry)
            .field("profiler", &self.profiler)
            .field("dispatch", &self.dispatch)
            .field(
                "static_bounds",
                &self.static_bounds.as_ref().map(|_| "<fn>"),
            )
            .finish_non_exhaustive()
    }
}

impl RacingTuner {
    /// Creates a tuner with the given settings.
    pub fn new(settings: TunerSettings) -> RacingTuner {
        RacingTuner {
            settings,
            pruner: None,
            frozen: Vec::new(),
            checkpoint: None,
            resume: None,
            cancel: None,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            dispatch: None,
            static_bounds: None,
        }
    }

    /// Installs a static bounds engine: each iteration, freshly sampled
    /// configurations whose [`StaticBounds::cost_lower_bound`] exceeds
    /// the incumbent elite's recorded cost are eliminated before racing
    /// (journaled as `static_eliminated` events). Elites are never
    /// eliminated, and iteration 0 has no incumbent, so a run can never
    /// be left without candidates.
    pub fn with_static_bounds(mut self, bounds: Arc<dyn StaticBounds>) -> RacingTuner {
        self.static_bounds = Some(bounds);
        self
    }

    /// Installs an evaluation dispatch backend: every race block's fresh
    /// evaluations are handed to it as one batch instead of running on
    /// the in-process thread pool. The [`EvalDispatch`] contract makes
    /// this outcome-invariant — the distributed coordinator uses it to
    /// shard evaluations across worker processes while keeping the tune
    /// bit-identical to a sequential run.
    pub fn with_dispatch(mut self, dispatch: Arc<dyn EvalDispatch + Send + Sync>) -> RacingTuner {
        self.dispatch = Some(dispatch);
        self
    }

    /// Freezes dimensions to fixed values: every sampled configuration
    /// has each `(index, value)` pair applied *before* pruning,
    /// deduplication and racing, so no simulation budget is ever spent
    /// exploring a frozen dimension. The parameter stays in the space
    /// (apply functions and checkpoint fingerprints still see it); only
    /// its sampling freedom is removed.
    ///
    /// The campaign analyzer uses this to pin dimensions its coverage
    /// matrix proves no kernel in the suite can observe.
    pub fn with_frozen(mut self, frozen: Vec<(usize, Value)>) -> RacingTuner {
        self.frozen = frozen;
        self
    }

    /// Installs a pruner: sampled configurations it rejects are dropped
    /// (and counted in [`TuneResult::pruned`]) instead of being raced.
    pub fn with_pruner(mut self, pruner: Pruner) -> RacingTuner {
        self.pruner = Some(pruner);
        self
    }

    /// Writes a [`TunerCheckpoint`] to `path` (atomically: temp file,
    /// then rename) after every completed iteration.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> RacingTuner {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resumes from the checkpoint at `path`, if it exists and matches
    /// this run (same seed, same parameter space, same instance count).
    /// A missing file starts a fresh run; a mismatched or corrupt one is
    /// ignored with a [`TuneResult::warnings`] entry.
    pub fn with_resume(mut self, path: impl Into<PathBuf>) -> RacingTuner {
        self.resume = Some(path.into());
        self
    }

    /// Installs a cooperative cancellation flag, checked between race
    /// blocks. A cancelled run returns with [`TuneResult::aborted`] set;
    /// the partially-raced iteration is discarded, so resuming from the
    /// last checkpoint replays it exactly.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> RacingTuner {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a telemetry handle: campaign/iteration/elimination events
    /// go to its journal and tuner counters to its metrics registry. The
    /// default handle is disabled, which costs nothing.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RacingTuner {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a self-profiler: the tuner records wall time into the
    /// phase tree `tune → iteration → {sample, simulate, rank,
    /// eliminate, checkpoint}`. The default handle is disabled, which
    /// costs one branch per phase boundary.
    pub fn with_profiler(mut self, profiler: Profiler) -> RacingTuner {
        self.profiler = profiler;
        self
    }

    /// The settings in use.
    pub fn settings(&self) -> &TunerSettings {
        &self.settings
    }

    /// The fallible core of [`Tuner::tune`]: minimises `cost` over
    /// `space`, surviving evaluation faults, and — when configured —
    /// checkpointing after every iteration and resuming from a prior
    /// checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `n_instances` is zero or `space` is empty — both
    /// indicate a caller bug, not a runtime condition.
    pub fn try_tune(
        &self,
        space: &ParamSpace,
        cost: &dyn TryCostFn,
        n_instances: usize,
    ) -> TuneResult {
        assert!(n_instances > 0, "need at least one instance");
        assert!(!space.is_empty(), "need at least one parameter");
        let st = &self.settings;
        let mut warnings = Vec::new();

        // irace: N_iter = 2 + floor(log2(#params)).
        let n_iters = 2 + (space.len() as f64).log2().floor() as usize;
        let stop_after = st.max_iterations.map_or(n_iters, |cap| cap.min(n_iters));

        let mut rng = StdRng::seed_from_u64(st.seed);
        let mut model = SamplingModel::new(space);
        let cache = CostCache::new();
        let quarantine = Quarantine::new();
        let mut budget = st.budget;
        let mut elites: Vec<(Configuration, f64)> = Vec::new();
        let mut history = Vec::new();
        let mut evals_total = 0u64;
        let mut pruned_total = 0u64;
        let mut retries_total = 0u64;
        let mut failed_total = 0u64;
        let mut static_total = 0u64;
        let mut first_iter = 0usize;

        // Self-profiler phase handles: all disabled (zero-cost) unless a
        // profiler was attached with `with_profiler`.
        let prof_on = self.profiler.is_enabled();
        let p_tune = self.profiler.timer("tune");
        let p_iter = p_tune.child("iteration");
        let p_sample = p_iter.child("sample");
        let p_checkpoint = p_iter.child("checkpoint");
        let race_prof = RaceProf::new(&p_iter);
        let t_tune = prof_on.then(std::time::Instant::now);

        let tel = &self.telemetry;
        let campaign_sw = tel.stopwatch();
        tel.emit(Event::CampaignStart {
            seed: st.seed,
            budget: st.budget as usize,
            n_instances,
            n_params: space.len(),
        });
        let m_iterations = tel.counter("tuner.iterations");
        let m_evals = tel.counter("tuner.evals");
        let m_retries = tel.counter("tuner.retries");
        let m_failed = tel.counter("tuner.failed_configs");
        let m_eliminations = tel.counter("tuner.eliminations");
        let m_quarantined = tel.counter("tuner.quarantined");
        let m_pruned = tel.counter("tuner.pruned");
        let m_static = tel.counter("tuner.static_eliminated");
        let g_budget = tel.gauge("tuner.budget_remaining");
        let h_iter_us = tel.histogram("tuner.iteration_us");

        if let Some(path) = &self.resume {
            match TunerCheckpoint::read(path, space) {
                Ok(cp) => match cp.validate(space, st, n_instances) {
                    Ok(()) => {
                        first_iter = cp.next_iteration;
                        budget = cp.budget_remaining;
                        evals_total = cp.evals_used;
                        pruned_total = cp.pruned;
                        retries_total = cp.retries;
                        failed_total = cp.failed_configs;
                        rng = StdRng::from_state(cp.rng_state);
                        model = SamplingModel::from_parts(cp.weights, cp.spread);
                        elites = cp.elites;
                        history = cp.history;
                        for (inst, reason) in cp.quarantine {
                            quarantine.insert(inst, reason);
                        }
                        for (cfg, inst, c) in cp.cache {
                            cache.put(&cfg, inst, c);
                        }
                        tel.emit(Event::Resume {
                            next_iteration: first_iter,
                            budget_remaining: budget as usize,
                        });
                    }
                    Err(e) => warnings.push(format!("ignoring checkpoint {}: {e}", path.display())),
                },
                Err(e) if !path.exists() => {
                    let _ = e; // a missing checkpoint is a normal first run
                }
                Err(e) => warnings.push(format!(
                    "ignoring unreadable checkpoint {}: {e}",
                    path.display()
                )),
            }
        }

        g_budget.set(budget);
        let started = std::time::Instant::now();
        let mut aborted = false;

        for iter in first_iter..n_iters {
            if iter >= stop_after {
                break;
            }
            if budget < (st.race.first_test * (st.race.min_survivors + 1)) as u64 {
                break;
            }
            if let Some(limit) = st.max_seconds {
                if started.elapsed().as_secs() >= limit {
                    break;
                }
            }
            if let Some(cancel) = &self.cancel {
                if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                    aborted = true;
                    break;
                }
            }
            let iter_sw = tel.stopwatch();
            let t_iter = prof_on.then(std::time::Instant::now);
            // Budget share for this iteration.
            let iter_budget = budget / (n_iters - iter) as u64;
            // Number of configurations: enough that the race can afford
            // first_test blocks for everyone plus elimination headroom.
            let denom = (st.race.first_test + 2 + iter).max(1) as u64;
            let n_new = (iter_budget / denom.max(1) / (n_instances as u64 / 4).max(1))
                .clamp(st.race.min_survivors as u64 + 2, 64) as usize;

            // Assemble the iteration's configurations: elites first.
            let t_sample = prof_on.then(std::time::Instant::now);
            let mut configs: Vec<Configuration> = elites.iter().map(|(c, _)| c.clone()).collect();
            let want = n_new + elites.len();
            // A concentrated model may keep producing duplicates; cap the
            // attempts so a converged search cannot spin forever.
            let mut attempts = 0usize;
            while configs.len() < want && attempts < want * 50 {
                attempts += 1;
                let mut c = if elites.is_empty() {
                    model.sample(space, &mut rng)
                } else {
                    // Pick a parent, weighted toward better elites.
                    let w = rng.gen_range(0.0..1.0f64);
                    let parent_idx =
                        ((w * w) * elites.len() as f64).floor() as usize % elites.len();
                    model.sample_around(space, &elites[parent_idx].0, &mut rng)
                };
                // Frozen dimensions are pinned before pruning and dedup:
                // a dimension the suite cannot observe never costs budget.
                for &(i, v) in &self.frozen {
                    c.set_value(i, v);
                }
                if let Some(p) = &self.pruner {
                    if p(&c).is_some() {
                        pruned_total += 1;
                        m_pruned.inc();
                        continue;
                    }
                }
                if !configs.contains(&c) {
                    configs.push(c);
                }
            }
            if let Some(t) = t_sample {
                // Count = configurations sampled fresh this iteration.
                let fresh = configs.len().saturating_sub(elites.len()) as u64;
                p_sample.add(fresh, t.elapsed().as_nanos() as u64);
            }
            if configs.len() < 2 {
                break; // fully converged
            }
            // irace's "soft restart": if sampling has collapsed (mostly
            // duplicates), re-widen the model so later iterations can
            // still explore.
            if configs.len() < want / 2 {
                model.spread = (model.spread * 3.0).min(1.0);
            }

            tel.emit(Event::IterationStart {
                iteration: iter,
                configs: configs.len(),
            });
            // Static pre-elimination: drop freshly sampled configurations
            // whose proved suite-wide cost lower bound already exceeds the
            // incumbent elite's recorded cost. The race outcome cannot
            // depend on them, so no simulation budget is spent. Elites
            // (the first `elites.len()` entries) are exempt, and iteration
            // 0 has no incumbent, so the race always keeps its anchors.
            // The pass consumes no randomness: the RNG stream — and hence
            // sampling and shuffling — is identical with bounds disabled.
            // Note the incumbent's recorded cost is its mean over the
            // *raced prefix* of a shuffled instance order, not the full
            // suite — short races can record prefix costs well below any
            // full-suite cost, which is what makes this comparison bite
            // at small budgets.
            if let Some(bounds) = &self.static_bounds {
                if let Some(incumbent) = elites.first().map(|(_, c)| *c) {
                    if incumbent.is_finite() {
                        let keep = elites.len();
                        let mut kept = Vec::with_capacity(configs.len());
                        for (i, c) in configs.drain(..).enumerate() {
                            let lb = if i >= keep {
                                bounds.cost_lower_bound(space, &c)
                            } else {
                                None
                            };
                            match lb {
                                Some(lb) if lb > incumbent => {
                                    static_total += 1;
                                    m_static.inc();
                                    tel.emit(Event::StaticEliminated {
                                        config: c.render(space),
                                        iteration: iter,
                                        lower_bound: lb,
                                        incumbent_cost: incumbent,
                                    });
                                }
                                _ => kept.push(c),
                            }
                        }
                        configs = kept;
                    }
                }
            }
            // Race over a freshly shuffled instance order.
            let mut order: Vec<usize> = (0..n_instances).collect();
            order.shuffle(&mut rng);
            let mut race_budget = iter_budget.min(budget);
            let before = race_budget;
            let result = race(
                space,
                &configs,
                &order,
                cost,
                RaceContext {
                    cache: &cache,
                    quarantine: &quarantine,
                    cancel: self.cancel.as_deref(),
                    threads: st.threads,
                    dispatch: self.dispatch.as_deref().map(|d| d as &dyn EvalDispatch),
                    prof: prof_on.then_some(&race_prof),
                },
                &st.race,
                &mut race_budget,
            );
            if result.aborted {
                // Discard the partial iteration entirely: budget, elites
                // and history keep their pre-iteration values, so a resume
                // from the last checkpoint replays this iteration
                // bit-identically.
                aborted = true;
                break;
            }
            let used = before - race_budget;
            budget = budget.saturating_sub(used);
            evals_total += result.evals_used;
            retries_total += result.retries;
            failed_total += result
                .log
                .iter()
                .filter(|e| matches!(e, RaceLogEntry::Failed { .. }))
                .count() as u64;

            m_iterations.inc();
            m_evals.add(result.evals_used);
            m_retries.add(result.retries);
            g_budget.set(budget);
            for entry in &result.log {
                let (kind, reason) = match entry {
                    RaceLogEntry::Eliminated { .. } => {
                        m_eliminations.inc();
                        ("statistical", String::new())
                    }
                    RaceLogEntry::Failed { reason, .. } => {
                        m_failed.inc();
                        ("failed", reason.clone())
                    }
                };
                tel.emit(Event::Elimination {
                    config: configs[entry.config()].render(space),
                    kind: kind.to_string(),
                    after_blocks: entry.after_blocks(),
                    reason,
                });
            }
            for (inst, reason) in &result.quarantined {
                m_quarantined.inc();
                tel.emit(Event::Quarantine {
                    instance: format!("instance {inst}"),
                    reason: reason.clone(),
                });
            }

            // New elite set. A race in which every configuration failed
            // leaves no survivors; the model then resamples from scratch
            // next iteration.
            elites = result
                .survivors
                .iter()
                .zip(&result.survivor_costs)
                .take(st.n_elites)
                .map(|(&i, &c)| (configs[i].clone(), c))
                .collect();
            let elite_refs: Vec<&Configuration> = elites.iter().map(|(c, _)| c).collect();
            model.update(space, &elite_refs, 0.5);

            let iter_us = iter_sw.elapsed_us();
            h_iter_us.record(iter_us);
            tel.emit(Event::IterationEnd {
                iteration: iter,
                survivors: result.survivors.len(),
                best_cost: elites.first().map(|(_, c)| *c).unwrap_or(f64::NAN),
                evals: result.evals_used as usize,
                blocks: result.blocks_used,
                micros: iter_us,
            });

            history.push(IterationSummary {
                iteration: iter,
                configs_raced: configs.len(),
                blocks_used: result.blocks_used,
                evals_used: result.evals_used,
                best_cost: elites.first().map(|(_, c)| *c).unwrap_or(f64::NAN),
                eliminations: result.log,
            });

            if let Some(path) = &self.checkpoint {
                let t_cp = prof_on.then(std::time::Instant::now);
                let cp = TunerCheckpoint {
                    next_iteration: iter + 1,
                    budget_remaining: budget,
                    evals_used: evals_total,
                    pruned: pruned_total,
                    retries: retries_total,
                    failed_configs: failed_total,
                    seed: st.seed,
                    n_instances,
                    space_fingerprint: TunerCheckpoint::fingerprint(space),
                    rng_state: rng.state(),
                    spread: model.spread,
                    weights: model.weights().to_vec(),
                    elites: elites.clone(),
                    quarantine: quarantine.entries(),
                    cache: cache.entries(),
                    history: history.clone(),
                };
                if let Err(e) = cp.save(path) {
                    warnings.push(format!(
                        "failed to write checkpoint {}: {e}",
                        path.display()
                    ));
                } else {
                    tel.emit(Event::Checkpoint {
                        iteration: iter,
                        path: path.display().to_string(),
                    });
                }
                if let Some(t) = t_cp {
                    p_checkpoint.record_ns(t.elapsed().as_nanos() as u64);
                }
            }
            if let Some(t) = t_iter {
                p_iter.record_ns(t.elapsed().as_nanos() as u64);
            }
        }

        if let Some(t) = t_tune {
            p_tune.record_ns(t.elapsed().as_nanos() as u64);
        }
        let (best, best_cost) = elites
            .first()
            .cloned()
            .unwrap_or_else(|| (space.default_configuration(), f64::NAN));
        tel.counter("cache.hits").add(cache.hits());
        tel.counter("cache.misses").add(cache.misses());
        tel.emit(Event::CampaignEnd {
            best_cost,
            evals: evals_total as usize,
            retries: retries_total as usize,
            failed_configs: failed_total as usize,
            pruned: pruned_total as usize,
            aborted,
            micros: campaign_sw.elapsed_us(),
        });
        tel.emit_metrics();
        TuneResult {
            best,
            best_cost,
            elites,
            evals_used: evals_total,
            pruned: pruned_total,
            history,
            quarantined: quarantine.entries(),
            failed_configs: failed_total,
            retries: retries_total,
            aborted,
            static_eliminated: static_total,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            warnings,
        }
    }
}

impl Tuner for RacingTuner {
    fn tune(&self, space: &ParamSpace, cost: &dyn CostFn, n_instances: usize) -> TuneResult {
        self.try_tune(space, &Fallible(cost), n_instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        let mut s = ParamSpace::new();
        s.add_integer("x", &[-8, -4, -2, -1, 0, 1, 2, 4, 8]);
        s.add_integer("y", &[-8, -4, -2, -1, 0, 1, 2, 4, 8]);
        s.add_categorical("mode", &["good", "bad", "awful"]);
        s.add_bool("boost");
        s
    }

    struct Bowl;

    impl CostFn for Bowl {
        fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
            let x = cfg.integer(space, "x") as f64;
            let y = cfg.integer(space, "y") as f64;
            let mode = match cfg.categorical(space, "mode") {
                "good" => 0.0,
                "bad" => 5.0,
                _ => 20.0,
            };
            let boost = if cfg.flag(space, "boost") { -1.0 } else { 0.0 };
            // Instance-dependent but ranking-preserving noise.
            let noise = ((instance * 7919) % 13) as f64 * 0.05;
            x * x + y * y + mode + boost + noise
        }
    }

    #[test]
    fn finds_the_global_optimum_on_a_separable_problem() {
        let tuner = RacingTuner::new(TunerSettings {
            budget: 4_000,
            seed: 7,
            ..TunerSettings::default()
        });
        let s = space();
        let r = tuner.tune(&s, &Bowl, 12);
        assert_eq!(r.best.integer(&s, "x"), 0, "{}", r.best.render(&s));
        assert_eq!(r.best.integer(&s, "y"), 0);
        assert_eq!(r.best.categorical(&s, "mode"), "good");
        assert!(r.best.flag(&s, "boost"));
        assert!(r.evals_used <= 4_000);
        assert!(!r.history.is_empty());
        assert_eq!(r.failed_configs, 0);
        assert_eq!(r.retries, 0);
        assert!(r.quarantined.is_empty());
        assert!(!r.aborted);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn respects_the_budget() {
        let tuner = RacingTuner::new(TunerSettings {
            budget: 300,
            seed: 3,
            ..TunerSettings::default()
        });
        let s = space();
        let r = tuner.tune(&s, &Bowl, 12);
        assert!(r.evals_used <= 300, "{} evals", r.evals_used);
    }

    #[test]
    fn deterministic_under_a_seed() {
        let s = space();
        let mk = || {
            RacingTuner::new(TunerSettings {
                budget: 1_000,
                seed: 99,
                ..TunerSettings::default()
            })
            .tune(&s, &Bowl, 12)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best, b.best);
        assert_eq!(a.evals_used, b.evals_used);
    }

    #[test]
    fn different_seeds_explore_differently_but_both_converge() {
        let s = space();
        let run = |seed| {
            RacingTuner::new(TunerSettings {
                budget: 4_000,
                seed,
                ..TunerSettings::default()
            })
            .tune(&s, &Bowl, 12)
            .best_cost
        };
        let a = run(1);
        let b = run(2);
        assert!(a < 2.0, "seed 1 converges: {a}");
        assert!(b < 2.0, "seed 2 converges: {b}");
    }

    #[test]
    fn single_instance_problems_are_supported() {
        // With one instance no statistical test can run (first_test = 5),
        // so the race degenerates to best-mean selection — still valid.
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 500,
            seed: 21,
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 1);
        assert!(r.best_cost.is_finite());
        assert!(r.evals_used <= 500);
    }

    #[test]
    fn wall_clock_limit_short_circuits() {
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 100_000,
            seed: 5,
            max_seconds: Some(0),
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 12);
        assert!(r.history.is_empty(), "no iteration may start at 0s");
        assert_eq!(r.evals_used, 0);
    }

    #[test]
    fn max_iterations_caps_the_schedule() {
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 4_000,
            seed: 7,
            max_iterations: Some(1),
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 12);
        assert_eq!(r.history.len(), 1);
        assert!(!r.aborted, "a capped run is complete, not cancelled");
    }

    #[test]
    fn cancellation_flag_aborts_the_run() {
        let s = space();
        let cancel = Arc::new(AtomicBool::new(true));
        let r = RacingTuner::new(TunerSettings {
            budget: 4_000,
            seed: 7,
            ..TunerSettings::default()
        })
        .with_cancel(Arc::clone(&cancel))
        .tune(&s, &Bowl, 12);
        assert!(r.aborted);
        assert_eq!(r.evals_used, 0);
    }

    #[test]
    fn config_side_faults_eliminate_without_poisoning_the_result() {
        struct Spiky;
        impl CostFn for Spiky {
            fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
                if cfg.categorical(space, "mode") == "awful" {
                    return f64::NAN; // rejected at the TryCostFn boundary
                }
                Bowl.cost(cfg, space, instance)
            }
        }
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 3_000,
            seed: 13,
            ..TunerSettings::default()
        })
        .tune(&s, &Spiky, 12);
        assert!(r.best_cost.is_finite());
        assert!(r.failed_configs > 0, "NaN configs were raced and removed");
        assert_ne!(r.best.categorical(&s, "mode"), "awful");
        assert!(r.quarantined.is_empty(), "config faults never quarantine");
    }

    #[test]
    fn pruner_keeps_rejected_configurations_out_of_the_race() {
        use std::collections::HashSet;
        use std::sync::Mutex;

        // A cost function that records every distinct configuration it is
        // asked to simulate.
        struct Recording {
            seen: Mutex<HashSet<String>>,
        }
        impl CostFn for Recording {
            fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
                self.seen.lock().unwrap().insert(cfg.render(space));
                Bowl.cost(cfg, space, instance)
            }
        }
        let run = |prune: bool| {
            let s = space();
            let mut tuner = RacingTuner::new(TunerSettings {
                budget: 2_000,
                seed: 17,
                ..TunerSettings::default()
            });
            if prune {
                tuner = tuner.with_pruner(std::sync::Arc::new(move |c: &Configuration| {
                    let s = space();
                    (c.categorical(&s, "mode") == "awful").then(|| "RA-awful".to_string())
                }));
            }
            let cost = Recording {
                seen: Mutex::new(HashSet::new()),
            };
            let r = tuner.tune(&s, &cost, 12);
            let simulated = cost.seen.into_inner().unwrap();
            let awful = simulated.iter().filter(|c| c.contains("awful")).count();
            (r, simulated.len(), awful)
        };

        let (free, _, awful_free) = run(false);
        let (pruned, _, awful_pruned) = run(true);
        assert_eq!(free.pruned, 0);
        assert!(awful_free > 0, "unpruned run explores invalid configs");
        assert_eq!(awful_pruned, 0, "pruned run never simulates them");
        assert!(pruned.pruned > 0, "the pruner actually rejected samples");
        assert!(pruned.best_cost.is_finite());
    }

    #[test]
    fn frozen_dimensions_never_vary_in_evaluated_configurations() {
        use std::collections::HashSet;
        use std::sync::Mutex;

        struct Recording {
            seen: Mutex<HashSet<String>>,
        }
        impl CostFn for Recording {
            fn cost(&self, cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
                self.seen.lock().unwrap().insert(cfg.render(space));
                Bowl.cost(cfg, space, instance)
            }
        }
        let s = space();
        let mode = s.index_of("mode");
        let boost = s.index_of("boost");
        let cost = Recording {
            seen: Mutex::new(HashSet::new()),
        };
        let r = RacingTuner::new(TunerSettings {
            budget: 2_000,
            seed: 23,
            ..TunerSettings::default()
        })
        .with_frozen(vec![(mode, Value::Cat(0)), (boost, Value::Flag(true))])
        .tune(&s, &cost, 12);
        let simulated = cost.seen.into_inner().unwrap();
        assert!(simulated.len() > 1, "the tuner still explores x and y");
        for c in &simulated {
            assert!(c.contains("mode=good"), "{c}");
            assert!(c.contains("boost=true"), "{c}");
        }
        assert_eq!(r.best.categorical(&s, "mode"), "good");
        assert!(r.best.flag(&s, "boost"));
    }

    #[test]
    fn profiling_builds_the_tuner_phase_tree() {
        let s = space();
        let mk = || TunerSettings {
            budget: 1_000,
            seed: 99,
            ..TunerSettings::default()
        };
        let plain = RacingTuner::new(mk()).tune(&s, &Bowl, 12);

        let profiler = Profiler::enabled();
        let r = RacingTuner::new(mk())
            .with_profiler(profiler.clone())
            .tune(&s, &Bowl, 12);
        assert_eq!(r.best, plain.best, "profiling is observation-only");
        assert_eq!(r.evals_used, plain.evals_used);

        let snap = profiler.snapshot();
        let tune = snap.find(&["tune"]).expect("tune phase recorded");
        assert_eq!(tune.count, 1);
        let iter = snap.find(&["tune", "iteration"]).expect("iteration phase");
        assert_eq!(iter.count as usize, r.history.len());
        let sample = snap
            .find(&["tune", "iteration", "sample"])
            .expect("sample phase");
        assert!(sample.count > 0, "configurations were sampled");
        let sim = snap
            .find(&["tune", "iteration", "simulate"])
            .expect("simulate phase");
        assert_eq!(sim.count, r.evals_used, "count tracks fresh evaluations");
        assert!(snap.find(&["tune", "iteration", "rank"]).is_some());
        assert!(snap.find(&["tune", "iteration", "eliminate"]).is_some());
        assert!(snap.find(&["tune", "iteration", "checkpoint"]).is_some());
        // The per-iteration phases nest under the iterations they ran in.
        assert!(iter.total_ns >= sample.total_ns + sim.total_ns);
    }

    #[test]
    fn history_shows_progress() {
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 3_000,
            seed: 11,
            ..TunerSettings::default()
        })
        .tune(&s, &Bowl, 12);
        let first = r.history.first().unwrap().best_cost;
        let last = r.history.last().unwrap().best_cost;
        assert!(last <= first, "cost must not regress: {first} -> {last}");
    }

    /// Lower-bounds the Bowl: the `mode` term alone is a sound lower
    /// bound on the cost (everything else is >= -1, and the noise is
    /// non-negative), tightened by 0 so it stays conservative.
    struct ModeFloor;

    impl StaticBounds for ModeFloor {
        fn cost_lower_bound(&self, space: &ParamSpace, cfg: &Configuration) -> Option<f64> {
            match cfg.categorical(space, "mode") {
                "good" => None, // no useful bound
                "bad" => Some(4.0),
                _ => Some(19.0),
            }
        }
    }

    #[test]
    fn static_bounds_eliminate_dominated_configs_and_preserve_the_optimum() {
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 4_000,
            seed: 7,
            ..TunerSettings::default()
        })
        .with_static_bounds(Arc::new(ModeFloor))
        .tune(&s, &Bowl, 12);
        // `mode=awful` configs (true cost >= 19) are provably worse than
        // any incumbent near the optimum, so some must have been dropped
        // without simulation once an incumbent existed.
        assert!(r.static_eliminated > 0, "nothing was statically eliminated");
        assert_eq!(r.best.integer(&s, "x"), 0, "{}", r.best.render(&s));
        assert_eq!(r.best.integer(&s, "y"), 0);
        assert_eq!(r.best.categorical(&s, "mode"), "good");
        assert!(r.best.flag(&s, "boost"));
    }

    /// A bound that eliminates everything it is asked about. Elites are
    /// exempt, so the campaign still completes with a usable result.
    struct EliminateAll;

    impl StaticBounds for EliminateAll {
        fn cost_lower_bound(&self, _space: &ParamSpace, _cfg: &Configuration) -> Option<f64> {
            Some(f64::MAX)
        }
    }

    #[test]
    fn elites_survive_even_a_pathological_bound() {
        let s = space();
        let r = RacingTuner::new(TunerSettings {
            budget: 2_000,
            seed: 5,
            ..TunerSettings::default()
        })
        .with_static_bounds(Arc::new(EliminateAll))
        .tune(&s, &Bowl, 12);
        assert!(r.best_cost.is_finite(), "a best config was still found");
        assert!(r.static_eliminated > 0);
        assert!(!r.aborted);
    }

    #[test]
    fn static_elimination_keeps_the_rng_stream_aligned() {
        // A bound that never fires must leave the campaign bit-identical
        // to one without any bounds engine installed.
        struct Never;
        impl StaticBounds for Never {
            fn cost_lower_bound(&self, _: &ParamSpace, _: &Configuration) -> Option<f64> {
                None
            }
        }
        let s = space();
        let mk = || TunerSettings {
            budget: 1_500,
            seed: 42,
            ..TunerSettings::default()
        };
        let plain = RacingTuner::new(mk()).tune(&s, &Bowl, 12);
        let bounded = RacingTuner::new(mk())
            .with_static_bounds(Arc::new(Never))
            .tune(&s, &Bowl, 12);
        assert_eq!(plain.best, bounded.best);
        assert_eq!(plain.best_cost.to_bits(), bounded.best_cost.to_bits());
        assert_eq!(plain.evals_used, bounded.evals_used);
        assert_eq!(bounded.static_eliminated, 0);
    }
}
