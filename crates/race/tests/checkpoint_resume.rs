//! Checkpoint → resume determinism: a tuning run killed mid-flight and
//! resumed from its checkpoint must produce a **bit-identical**
//! `TuneResult` to the same run left uninterrupted.

use racesim_race::{
    Configuration, EvalError, ParamSpace, RacingTuner, RetryPolicy, TryCostFn, TuneResult,
    TunerSettings,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add_integer("depth", &[1, 2, 4, 8, 16]);
    s.add_integer("width", &[1, 2, 3, 4]);
    s.add_categorical("policy", &["lru", "rand", "fifo"]);
    s.add_bool("prefetch");
    s
}

struct Synthetic;

impl TryCostFn for Synthetic {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let d = cfg.integer(space, "depth") as f64;
        let w = cfg.integer(space, "width") as f64;
        let p = match cfg.categorical(space, "policy") {
            "lru" => 0.0,
            "rand" => 0.7,
            _ => 0.3,
        };
        let f = if cfg.flag(space, "prefetch") {
            -0.2
        } else {
            0.0
        };
        Ok((d - 8.0).abs() + (w - 3.0).powi(2) + p + f + (instance % 7) as f64 * 0.05)
    }
}

fn settings(seed: u64) -> TunerSettings {
    let mut st = TunerSettings {
        budget: 900,
        seed,
        ..TunerSettings::default()
    };
    st.race.retry = RetryPolicy::immediate(2);
    st
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("racesim_{}_{name}.ckpt", std::process::id()))
}

/// Field-by-field bit equality, `f64`s compared via `to_bits`.
fn assert_bit_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best, "best configuration");
    assert_eq!(
        a.best_cost.to_bits(),
        b.best_cost.to_bits(),
        "best cost: {} vs {}",
        a.best_cost,
        b.best_cost
    );
    assert_eq!(a.elites.len(), b.elites.len(), "elite count");
    for (x, y) in a.elites.iter().zip(&b.elites) {
        assert_eq!(x.0, y.0, "elite configuration");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "elite cost");
    }
    assert_eq!(a.evals_used, b.evals_used, "evaluations");
    assert_eq!(a.pruned, b.pruned, "pruned");
    assert_eq!(a.retries, b.retries, "retries");
    assert_eq!(a.failed_configs, b.failed_configs, "failed configs");
    assert_eq!(a.quarantined, b.quarantined, "quarantine");
    assert_eq!(a.history.len(), b.history.len(), "iteration count");
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.iteration, y.iteration);
        assert_eq!(x.configs_raced, y.configs_raced);
        assert_eq!(x.blocks_used, y.blocks_used);
        assert_eq!(x.evals_used, y.evals_used);
        assert_eq!(x.best_cost.to_bits(), y.best_cost.to_bits());
        assert_eq!(x.eliminations, y.eliminations);
    }
}

#[test]
fn staged_run_resumes_bit_identically() {
    let s = space();
    let seed = 0xDEAD_BEEF;

    // Reference: one uninterrupted run.
    let full = RacingTuner::new(settings(seed)).try_tune(&s, &Synthetic, 12);
    assert!(full.history.len() >= 2, "need at least two iterations");

    // Staged: stop after iteration 1 (checkpoint written), then resume.
    let path = tmp("staged");
    let _ = std::fs::remove_file(&path);
    let first = RacingTuner::new(TunerSettings {
        max_iterations: Some(1),
        ..settings(seed)
    })
    .with_checkpoint(&path)
    .try_tune(&s, &Synthetic, 12);
    assert_eq!(first.history.len(), 1);
    assert!(path.exists(), "checkpoint must have been written");

    let resumed = RacingTuner::new(settings(seed))
        .with_checkpoint(&path)
        .with_resume(&path)
        .try_tune(&s, &Synthetic, 12);
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);

    assert_bit_identical(&full, &resumed);
    let _ = std::fs::remove_file(&path);
}

/// A cost function that trips a cancellation flag after a fixed number of
/// evaluations — simulating a kill arriving mid-iteration.
struct KillSwitch {
    after: u64,
    seen: AtomicU64,
    cancel: Arc<AtomicBool>,
}

impl TryCostFn for KillSwitch {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
            self.cancel.store(true, Ordering::Relaxed);
        }
        Synthetic.try_cost(cfg, space, instance)
    }
}

#[test]
fn killed_mid_iteration_then_resumed_matches_uninterrupted() {
    let s = space();
    let seed = 0xFEED_F00D;

    let full = RacingTuner::new(settings(seed)).try_tune(&s, &Synthetic, 12);
    assert!(full.history.len() >= 2);
    let first_iter_evals = full.history[0].evals_used;

    // Kill partway through the *second* iteration: the checkpoint then
    // holds iteration 0 only, and the partial iteration 1 is discarded.
    let path = tmp("killed");
    let _ = std::fs::remove_file(&path);
    let cancel = Arc::new(AtomicBool::new(false));
    let killer = KillSwitch {
        after: first_iter_evals + 3,
        seen: AtomicU64::new(0),
        cancel: Arc::clone(&cancel),
    };
    let killed = RacingTuner::new(settings(seed))
        .with_checkpoint(&path)
        .with_cancel(cancel)
        .try_tune(&s, &killer, 12);
    assert!(killed.aborted, "the kill switch must have fired");
    assert!(path.exists());

    let resumed = RacingTuner::new(settings(seed))
        .with_checkpoint(&path)
        .with_resume(&path)
        .try_tune(&s, &Synthetic, 12);
    assert!(!resumed.aborted);
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);

    assert_bit_identical(&full, &resumed);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_from_a_missing_checkpoint_is_a_normal_fresh_run() {
    let s = space();
    let path = tmp("missing");
    let _ = std::fs::remove_file(&path);
    let fresh = RacingTuner::new(settings(1)).try_tune(&s, &Synthetic, 12);
    let resumed = RacingTuner::new(settings(1))
        .with_resume(&path)
        .try_tune(&s, &Synthetic, 12);
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
    assert_bit_identical(&fresh, &resumed);
}

#[test]
fn corrupt_or_foreign_checkpoints_are_ignored_with_a_warning() {
    let s = space();

    // Corrupt text.
    let path = tmp("corrupt");
    std::fs::write(&path, "not a checkpoint at all").unwrap();
    let r = RacingTuner::new(settings(2))
        .with_resume(&path)
        .try_tune(&s, &Synthetic, 12);
    assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    assert!(r.best_cost.is_finite());
    let _ = std::fs::remove_file(&path);

    // Valid checkpoint, wrong run shape (different seed).
    let path = tmp("foreign");
    let _ = std::fs::remove_file(&path);
    RacingTuner::new(TunerSettings {
        max_iterations: Some(1),
        ..settings(3)
    })
    .with_checkpoint(&path)
    .try_tune(&s, &Synthetic, 12);
    let r = RacingTuner::new(settings(4))
        .with_resume(&path)
        .try_tune(&s, &Synthetic, 12);
    assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    assert!(r.warnings[0].contains("checkpoint"), "{:?}", r.warnings);
    // The foreign state was not absorbed: the run equals a fresh one.
    let fresh = RacingTuner::new(settings(4)).try_tune(&s, &Synthetic, 12);
    assert_bit_identical(&fresh, &r);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kill_during_checkpoint_write_never_tears_resume_state() {
    use racesim_race::TunerCheckpoint;

    let s = space();
    let seed = 0xCAFE_D00D;
    let full = RacingTuner::new(settings(seed)).try_tune(&s, &Synthetic, 12);

    // A valid checkpoint from a staged first run.
    let path = tmp("torn");
    let _ = std::fs::remove_file(&path);
    RacingTuner::new(TunerSettings {
        max_iterations: Some(1),
        ..settings(seed)
    })
    .with_checkpoint(&path)
    .try_tune(&s, &Synthetic, 12);
    let valid = std::fs::read_to_string(&path).unwrap();

    // The atomic protocol writes to `<path>.tmp` and renames. A process
    // killed at any byte of that write leaves a truncated tmp file next
    // to the intact previous checkpoint — simulate every prefix length
    // and prove resume never sees torn state.
    let tmp_path = {
        let mut p = path.as_os_str().to_owned();
        p.push(".tmp");
        PathBuf::from(p)
    };
    for cut in [0, 1, valid.len() / 2, valid.len().saturating_sub(1)] {
        std::fs::write(&tmp_path, &valid[..cut]).unwrap();
        let cp = TunerCheckpoint::read(&path, &s).expect("real checkpoint intact");
        assert!(cp.next_iteration >= 1, "restored the completed iteration");
        let resumed = RacingTuner::new(settings(seed))
            .with_resume(&path)
            .try_tune(&s, &Synthetic, 12);
        assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
        assert_bit_identical(&full, &resumed);
    }

    // Had the write gone to `path` in place (non-atomic), any truncation
    // would corrupt resume state. Prove every prefix is rejected cleanly
    // (warning + fresh run, no panic) — the failure mode the tmp+rename
    // protocol exists to prevent.
    for cut in [0, 1, valid.len() / 3, valid.len() - 1] {
        std::fs::write(&path, &valid[..cut]).unwrap();
        let r = RacingTuner::new(settings(seed))
            .with_resume(&path)
            .try_tune(&s, &Synthetic, 12);
        if !r.warnings.is_empty() {
            assert_eq!(r.warnings.len(), 1, "cut at {cut}: {:?}", r.warnings);
        }
        // Rejected prefixes fall back to a fresh run; a prefix that only
        // lost trailing whitespace still restores full state. Either way
        // the result is the uninterrupted campaign, bit for bit.
        assert_bit_identical(&full, &r);
    }

    // And a completed save leaves no tmp file behind.
    std::fs::write(&path, &valid).unwrap();
    let cp = TunerCheckpoint::read(&path, &s).unwrap();
    std::fs::remove_file(&tmp_path).ok();
    cp.save(&path).unwrap();
    assert!(!tmp_path.exists(), "save must clean up its tmp file");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), valid);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp_path);
}
