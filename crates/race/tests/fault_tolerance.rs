//! End-to-end fault-tolerance: the tuner must survive every failure mode
//! of a cost evaluation — transient glitches, persistently dead
//! instances, and broken configurations — without poisoning its result.

use racesim_race::{
    Configuration, EvalError, ParamSpace, RacingTuner, RetryPolicy, TryCostFn, TunerSettings,
};
use std::collections::HashMap;
use std::sync::Mutex;

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add_integer("x", &[-4, -2, -1, 0, 1, 2, 4]);
    s.add_integer("y", &[-4, -2, -1, 0, 1, 2, 4]);
    s.add_bool("b");
    s
}

fn bowl(cfg: &Configuration, space: &ParamSpace, instance: usize) -> f64 {
    let x = cfg.integer(space, "x") as f64;
    let y = cfg.integer(space, "y") as f64;
    let b = if cfg.flag(space, "b") { -0.5 } else { 0.0 };
    x * x + y * y + b + (instance % 5) as f64 * 0.1
}

fn settings(budget: u64, seed: u64) -> TunerSettings {
    let mut st = TunerSettings {
        budget,
        seed,
        ..TunerSettings::default()
    };
    // Pure-simulation tests never want real backoff sleeps.
    st.race.retry = RetryPolicy::immediate(3);
    st
}

/// Fails transiently on the first `flaky_attempts` attempts of every
/// (configuration, instance) pair, then succeeds — the retry loop must
/// absorb all of it.
struct Flaky {
    flaky_attempts: u32,
    attempts: Mutex<HashMap<(Vec<u8>, usize), u32>>,
}

impl Flaky {
    fn new(flaky_attempts: u32) -> Flaky {
        Flaky {
            flaky_attempts,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    fn key(cfg: &Configuration, space: &ParamSpace, instance: usize) -> (Vec<u8>, usize) {
        (cfg.render(space).into_bytes(), instance)
    }
}

impl TryCostFn for Flaky {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let mut map = self.attempts.lock().unwrap();
        let n = map.entry(Self::key(cfg, space, instance)).or_insert(0);
        *n += 1;
        if *n <= self.flaky_attempts {
            return Err(EvalError::Transient(format!("glitch on attempt {n}")));
        }
        Ok(bowl(cfg, space, instance))
    }
}

#[test]
fn transient_faults_are_retried_until_they_clear() {
    let s = space();
    let cost = Flaky::new(2); // attempts 1 and 2 fail, 3 succeeds
    let result = RacingTuner::new(settings(600, 3)).try_tune(&s, &cost, 10);
    assert!(!result.aborted);
    assert!(result.best_cost.is_finite());
    assert!(result.retries > 0, "retries must be accounted");
    assert!(result.quarantined.is_empty(), "nothing persistently failed");
    assert_eq!(result.failed_configs, 0);
    // The optimum is still found despite every evaluation glitching twice.
    assert_eq!(result.best.integer(&s, "x"), 0);
    assert_eq!(result.best.integer(&s, "y"), 0);
}

/// One instance is dead on every attempt; everything else is clean.
struct DeadInstance(usize);

impl TryCostFn for DeadInstance {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if instance == self.0 {
            return Err(EvalError::Instance("counters never arrived".to_string()));
        }
        Ok(bowl(cfg, space, instance))
    }
}

#[test]
fn a_dead_instance_is_quarantined_and_only_that_instance() {
    let s = space();
    let result = RacingTuner::new(settings(600, 7)).try_tune(&s, &DeadInstance(3), 10);
    assert!(result.best_cost.is_finite());
    assert_eq!(result.quarantined.len(), 1, "{:?}", result.quarantined);
    assert_eq!(result.quarantined[0].0, 3);
    assert!(result.quarantined[0].1.contains("counters never arrived"));
    // The race went on without the dead instance.
    assert_eq!(result.best.integer(&s, "x"), 0);
    assert_eq!(result.best.integer(&s, "y"), 0);
}

/// Transient faults that never clear on one instance: the retry loop must
/// exhaust its attempts and then quarantine, not spin forever.
struct NeverClears(usize);

impl TryCostFn for NeverClears {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if instance == self.0 {
            return Err(EvalError::Transient("thermal storm".to_string()));
        }
        Ok(bowl(cfg, space, instance))
    }
}

#[test]
fn exhausted_transient_retries_escalate_to_quarantine() {
    let s = space();
    let result = RacingTuner::new(settings(600, 11)).try_tune(&s, &NeverClears(0), 10);
    assert!(result.best_cost.is_finite());
    assert_eq!(result.quarantined.len(), 1);
    assert_eq!(result.quarantined[0].0, 0);
    assert!(
        result.quarantined[0].1.contains("transient"),
        "{}",
        result.quarantined[0].1
    );
    assert!(result.retries > 0);
}

/// Configurations in one corner of the space cannot be evaluated at all.
struct BrokenCorner;

impl TryCostFn for BrokenCorner {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if cfg.integer(space, "x") == -4 {
            return Err(EvalError::Config("simulator deadlocked".to_string()));
        }
        Ok(bowl(cfg, space, instance))
    }
}

#[test]
fn broken_configurations_are_eliminated_not_fatal() {
    let s = space();
    let result = RacingTuner::new(settings(600, 13)).try_tune(&s, &BrokenCorner, 10);
    assert!(result.best_cost.is_finite());
    assert!(result.failed_configs > 0, "the corner must have been hit");
    assert!(result.quarantined.is_empty(), "no board-side fault here");
    assert_ne!(result.best.integer(&s, "x"), -4);
    // The failure reasons surface in the race history.
    let failures: usize = result
        .history
        .iter()
        .flat_map(|it| &it.eliminations)
        .filter(|e| matches!(e, racesim_race::RaceLogEntry::Failed { .. }))
        .count();
    assert!(failures > 0, "failed eliminations must be logged");
}

/// Everything fails: the tuner must terminate with a NaN best cost and an
/// intact quarantine/failure report rather than hanging or panicking.
struct TotalLoss;

impl TryCostFn for TotalLoss {
    fn try_cost(&self, _: &Configuration, _: &ParamSpace, _: usize) -> Result<f64, EvalError> {
        Err(EvalError::Instance("board on fire".to_string()))
    }
}

#[test]
fn total_board_loss_terminates_cleanly() {
    let s = space();
    let result = RacingTuner::new(settings(200, 17)).try_tune(&s, &TotalLoss, 4);
    assert!(!result.best_cost.is_finite());
    assert_eq!(result.quarantined.len(), 4, "{:?}", result.quarantined);
}

/// A panicking cost function is a config-side fault, not a crash.
struct Panics;

impl TryCostFn for Panics {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if cfg.integer(space, "x") == 4 && cfg.integer(space, "y") == 4 {
            panic!("simulated simulator bug");
        }
        Ok(bowl(cfg, space, instance))
    }
}

#[test]
fn cost_function_panics_are_contained() {
    let s = space();
    let result = RacingTuner::new(settings(600, 19)).try_tune(&s, &Panics, 10);
    assert!(result.best_cost.is_finite());
    assert_eq!(result.best.integer(&s, "x"), 0);
}
