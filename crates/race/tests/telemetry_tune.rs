//! End-to-end telemetry behaviour of the racing tuner: the journal
//! captures the campaign shape, disabled telemetry is a true no-op that
//! never perturbs the tuning, and a run killed mid-iteration then
//! resumed with an appending journal yields one well-formed file.

use racesim_race::{
    Configuration, EvalError, ParamSpace, RacingTuner, RetryPolicy, TryCostFn, TuneResult,
    TunerSettings,
};
use racesim_telemetry::{parse_journal, Event, Telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    s.add_integer("depth", &[1, 2, 4, 8, 16]);
    s.add_integer("width", &[1, 2, 3, 4]);
    s.add_categorical("policy", &["lru", "rand", "fifo"]);
    s.add_bool("prefetch");
    s
}

struct Synthetic;

impl TryCostFn for Synthetic {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        let d = cfg.integer(space, "depth") as f64;
        let w = cfg.integer(space, "width") as f64;
        let p = match cfg.categorical(space, "policy") {
            "lru" => 0.0,
            "rand" => 0.7,
            _ => 0.3,
        };
        let f = if cfg.flag(space, "prefetch") {
            -0.2
        } else {
            0.0
        };
        Ok((d - 8.0).abs() + (w - 3.0).powi(2) + p + f + (instance % 7) as f64 * 0.05)
    }
}

fn settings(seed: u64) -> TunerSettings {
    let mut st = TunerSettings {
        budget: 900,
        seed,
        ..TunerSettings::default()
    };
    st.race.retry = RetryPolicy::immediate(2);
    st
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("racesim_tel_{}_{name}", std::process::id()))
}

fn assert_same_outcome(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best, "best configuration");
    assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits(), "best cost");
    assert_eq!(a.evals_used, b.evals_used, "evaluations");
    assert_eq!(a.history.len(), b.history.len(), "iterations");
}

#[test]
fn journal_captures_the_campaign_shape() {
    let s = space();
    let tel = Telemetry::in_memory();
    let result = RacingTuner::new(settings(42))
        .with_telemetry(tel.clone())
        .try_tune(&s, &Synthetic, 12);
    assert!(!result.aborted);

    let (entries, errors) = parse_journal(&tel.lines().join("\n"));
    assert!(errors.is_empty(), "{errors:?}");

    // Opens with the campaign header, carrying the run's shape.
    assert!(matches!(
        &entries[0].event,
        Event::CampaignStart {
            seed: 42,
            budget: 900,
            n_instances: 12,
            n_params: 4
        }
    ));

    let count = |pred: &dyn Fn(&Event) -> bool| entries.iter().filter(|e| pred(&e.event)).count();
    let iters = result.history.len();
    assert_eq!(
        count(&|e| matches!(e, Event::IterationStart { .. })),
        iters,
        "one iteration_start per completed iteration"
    );
    assert_eq!(count(&|e| matches!(e, Event::IterationEnd { .. })), iters);
    assert_eq!(count(&|e| matches!(e, Event::CampaignEnd { .. })), 1);

    // The footer and the metric finals agree with the returned result.
    let end = entries
        .iter()
        .find_map(|e| match &e.event {
            Event::CampaignEnd {
                best_cost, evals, ..
            } => Some((*best_cost, *evals)),
            _ => None,
        })
        .expect("campaign_end present");
    assert_eq!(end.0.to_bits(), result.best_cost.to_bits());
    assert_eq!(end.1, result.evals_used as usize);

    let counter_final = |wanted: &str| {
        entries.iter().find_map(|e| match &e.event {
            Event::CounterFinal { name, value } if name == wanted => Some(*value),
            _ => None,
        })
    };
    assert_eq!(counter_final("tuner.evals"), Some(result.evals_used));
    assert_eq!(counter_final("tuner.iterations"), Some(iters as u64));
    assert_eq!(counter_final("cache.hits"), Some(result.cache_hits));
    assert_eq!(counter_final("cache.misses"), Some(result.cache_misses));

    // Eliminations are journaled with rendered configurations.
    let elim = entries.iter().any(
        |e| matches!(&e.event, Event::Elimination { config, kind, .. } if !config.is_empty() && kind == "statistical"),
    );
    assert!(elim, "statistical eliminations must appear in the journal");
}

#[test]
fn cache_counters_reflect_evaluation_reuse() {
    let s = space();
    let result = RacingTuner::new(settings(7)).try_tune(&s, &Synthetic, 12);
    assert!(result.cache_misses > 0, "every first evaluation is a miss");
    assert!(
        result.cache_hits > 0,
        "elites re-raced across iterations must hit the cache"
    );
    let rate = result.cache_hit_rate();
    assert!((0.0..=1.0).contains(&rate), "{rate}");
}

#[test]
fn disabled_and_enabled_telemetry_never_perturb_the_tuning() {
    let s = space();
    let bare = RacingTuner::new(settings(11)).try_tune(&s, &Synthetic, 12);
    let off = RacingTuner::new(settings(11))
        .with_telemetry(Telemetry::disabled())
        .try_tune(&s, &Synthetic, 12);
    let on = RacingTuner::new(settings(11))
        .with_telemetry(Telemetry::in_memory())
        .try_tune(&s, &Synthetic, 12);
    assert_same_outcome(&bare, &off);
    assert_same_outcome(&bare, &on);
}

#[test]
fn disabled_telemetry_records_nothing_through_the_tuner() {
    let s = space();
    let tel = Telemetry::disabled();
    let _ = RacingTuner::new(settings(5))
        .with_telemetry(tel.clone())
        .try_tune(&s, &Synthetic, 12);
    assert!(tel.lines().is_empty());
    let snap = tel.snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
}

#[test]
fn instrumentation_overhead_stays_small() {
    let s = space();
    // Warm up (allocator, code paths), then time three runs each way and
    // keep the fastest — the bound is deliberately generous; this is a
    // smoke test against pathological slowdowns, not a benchmark.
    let _ = RacingTuner::new(settings(3)).try_tune(&s, &Synthetic, 12);
    let time_one = |tel: Option<Telemetry>| {
        (0..3)
            .map(|_| {
                let mut tuner = RacingTuner::new(settings(3));
                if let Some(t) = &tel {
                    tuner = tuner.with_telemetry(t.clone());
                }
                let t0 = std::time::Instant::now();
                let _ = tuner.try_tune(&s, &Synthetic, 12);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let bare = time_one(None);
    let instrumented = time_one(Some(Telemetry::in_memory()));
    assert!(
        instrumented <= bare * 10 + std::time::Duration::from_millis(250),
        "instrumented tune too slow: {instrumented:?} vs bare {bare:?}"
    );
}

/// A cost function that trips a cancellation flag after a fixed number of
/// evaluations — simulating a kill arriving mid-iteration.
struct KillSwitch {
    after: u64,
    seen: AtomicU64,
    cancel: Arc<AtomicBool>,
}

impl TryCostFn for KillSwitch {
    fn try_cost(
        &self,
        cfg: &Configuration,
        space: &ParamSpace,
        instance: usize,
    ) -> Result<f64, EvalError> {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
            self.cancel.store(true, Ordering::Relaxed);
        }
        Synthetic.try_cost(cfg, space, instance)
    }
}

#[test]
fn killed_then_resumed_run_appends_one_well_formed_journal() {
    let s = space();
    let seed = 0xBEE5;
    let full = RacingTuner::new(settings(seed)).try_tune(&s, &Synthetic, 12);
    assert!(full.history.len() >= 2);
    let first_iter_evals = full.history[0].evals_used;

    let ckpt = tmp("killed.ckpt");
    let journal = tmp("killed.jsonl");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);

    // Segment 1: killed partway through the second iteration. The
    // journal file is created fresh (truncate).
    let cancel = Arc::new(AtomicBool::new(false));
    let killer = KillSwitch {
        after: first_iter_evals + 3,
        seen: AtomicU64::new(0),
        cancel: Arc::clone(&cancel),
    };
    let tel1 = Telemetry::to_file(&journal, false).expect("journal opens");
    let killed = RacingTuner::new(settings(seed))
        .with_checkpoint(&ckpt)
        .with_cancel(cancel)
        .with_telemetry(tel1.clone())
        .try_tune(&s, &killer, 12);
    assert!(killed.aborted);
    tel1.flush();
    assert_eq!(tel1.io_errors(), 0);

    // Segment 2: resumed from the checkpoint, journal appended.
    let tel2 = Telemetry::to_file(&journal, true).expect("journal reopens");
    let resumed = RacingTuner::new(settings(seed))
        .with_checkpoint(&ckpt)
        .with_resume(&ckpt)
        .with_telemetry(tel2.clone())
        .try_tune(&s, &Synthetic, 12);
    assert!(!resumed.aborted);
    assert!(resumed.warnings.is_empty(), "{:?}", resumed.warnings);
    assert_same_outcome(&full, &resumed);
    tel2.flush();
    assert_eq!(tel2.io_errors(), 0);

    // The merged journal parses cleanly and shows both segments.
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let (entries, errors) = parse_journal(&text);
    assert!(errors.is_empty(), "{errors:?}");
    let count = |pred: &dyn Fn(&Event) -> bool| entries.iter().filter(|e| pred(&e.event)).count();
    assert_eq!(count(&|e| matches!(e, Event::CampaignStart { .. })), 2);
    assert_eq!(count(&|e| matches!(e, Event::CampaignEnd { .. })), 2);
    assert_eq!(count(&|e| matches!(e, Event::Resume { .. })), 1);
    assert!(count(&|e| matches!(e, Event::Checkpoint { .. })) >= 1);

    // The resume event picks up after the last checkpointed iteration.
    let next = entries
        .iter()
        .find_map(|e| match &e.event {
            Event::Resume { next_iteration, .. } => Some(*next_iteration),
            _ => None,
        })
        .unwrap();
    assert!(next >= 1, "resume continues past iteration 0, got {next}");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&journal);
}
