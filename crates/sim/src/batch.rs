//! Parallel batch simulation.
//!
//! The tuning process "launches several simulation experiments in
//! parallel" (paper, Section III-C; the authors used a 24-context host).
//! This module provides the equivalent: a work-stealing batch runner over
//! (simulator, trace) jobs.

use crate::simulator::{SimError, SimStats, Simulator};
use racesim_trace::TraceBuffer;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs every `(simulator, trace)` job, using up to `threads` worker
/// threads, and returns the results in job order.
///
/// Traces are shared via `Arc` so a 40-benchmark suite is decoded and held
/// in memory once regardless of how many configurations race over it.
pub fn run_batch(
    jobs: &[(Simulator, Arc<TraceBuffer>)],
    threads: usize,
) -> Vec<Result<SimStats, SimError>> {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|(sim, t)| sim.run(t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<SimStats, SimError>>> = vec![None; jobs.len()];
    let slots: Vec<_> = results.iter_mut().map(std::sync::Mutex::new).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (sim, trace) = &jobs[i];
                let out = sim.run(trace);
                **slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    })
    .expect("batch worker panicked");
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use racesim_isa::{asm::Asm, Reg};
    use racesim_trace::TraceRecord;

    fn trace() -> Arc<TraceBuffer> {
        let mut a = Asm::new();
        a.addi(Reg::x(1), Reg::x(1), 1);
        let p = a.finish();
        Arc::new(
            (0..200)
                .map(|_| TraceRecord::plain(p.code_base, p.code[0]))
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_serial() {
        let t = trace();
        let jobs: Vec<_> = (0..8)
            .map(|_| (Simulator::new(Platform::a53_like()), Arc::clone(&t)))
            .collect();
        let serial = run_batch(&jobs, 1);
        let parallel = run_batch(&jobs, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.as_ref().unwrap().core.cycles,
                b.as_ref().unwrap().core.cycles
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[], 4).is_empty());
    }
}
