//! Sniper-style plain-text platform configuration files.
//!
//! Sniper exposes its "couple hundred configuration parameters" through
//! INI-like config files; this module provides the same interface for
//! racesim platforms: [`to_text`] renders a [`Platform`] as
//! `[section] key = value` text, and [`from_text`] parses it back. The
//! round-trip is exact, so tuned models can be saved, diffed and shared.
//!
//! ```
//! use racesim_sim::{config_text, Platform};
//!
//! let p = Platform::a53_like();
//! let text = config_text::to_text(&p);
//! assert_eq!(config_text::from_text(&text)?, p);
//! # Ok::<(), racesim_sim::config_text::ConfigError>(())
//! ```

use crate::platform::Platform;
use racesim_mem::{
    CacheConfig, IndexHash, PrefetchWhere, PrefetcherConfig, Replacement, TagAccess, TlbConfig,
};
use racesim_uarch::branch::{BranchConfig, DirPredictorConfig, IndirectPredictorConfig};
use racesim_uarch::CoreKind;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors from parsing a platform config file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not `key = value` or `[section]`.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A required key was absent.
    MissingKey(String),
    /// A value failed to parse.
    BadValue {
        /// The offending key.
        key: String,
        /// The raw value.
        value: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadLine { line } => write!(f, "malformed config line {line}"),
            ConfigError::MissingKey(k) => write!(f, "missing key {k}"),
            ConfigError::BadValue { key, value } => {
                write!(f, "invalid value {value:?} for key {key}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Renders a platform as config-file text.
pub fn to_text(p: &Platform) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# racesim platform configuration");
    let _ = writeln!(out, "[platform]");
    let _ = writeln!(out, "name = {}", p.name);
    let _ = writeln!(
        out,
        "core_kind = {}",
        match p.core.kind {
            CoreKind::InOrder => "in_order",
            CoreKind::OutOfOrder => "out_of_order",
        }
    );
    let _ = writeln!(out, "frequency_ghz = {}", p.core.frequency_ghz);

    let _ = writeln!(out, "\n[frontend]");
    let _ = writeln!(out, "fetch_width = {}", p.core.frontend.fetch_width);
    let _ = writeln!(out, "depth = {}", p.core.frontend.depth);

    let b = &p.core.branch;
    let _ = writeln!(out, "\n[branch]");
    let (kind, tb, hb) = match b.direction {
        DirPredictorConfig::StaticTaken => ("static_taken", 0, 0),
        DirPredictorConfig::StaticNotTaken => ("static_not_taken", 0, 0),
        DirPredictorConfig::Bimodal { table_bits } => ("bimodal", table_bits, 0),
        DirPredictorConfig::Gshare {
            table_bits,
            history_bits,
        } => ("gshare", table_bits, history_bits),
        DirPredictorConfig::Tournament {
            table_bits,
            history_bits,
        } => ("tournament", table_bits, history_bits),
    };
    let _ = writeln!(out, "predictor = {kind}");
    let _ = writeln!(out, "table_bits = {tb}");
    let _ = writeln!(out, "history_bits = {hb}");
    let (ikind, itb, ihb) = match b.indirect {
        IndirectPredictorConfig::BtbOnly => ("btb_only", 0, 0),
        IndirectPredictorConfig::PathHistory {
            table_bits,
            history_bits,
        } => ("path_history", table_bits, history_bits),
    };
    let _ = writeln!(out, "indirect = {ikind}");
    let _ = writeln!(out, "indirect_table_bits = {itb}");
    let _ = writeln!(out, "indirect_history_bits = {ihb}");
    let _ = writeln!(out, "btb_entries = {}", b.btb_entries);
    let _ = writeln!(out, "btb_ways = {}", b.btb_ways);
    let _ = writeln!(out, "ras_entries = {}", b.ras_entries);
    let _ = writeln!(out, "mispredict_penalty = {}", b.mispredict_penalty);
    let _ = writeln!(out, "btb_miss_penalty = {}", b.btb_miss_penalty);

    let l = &p.core.lat;
    let _ = writeln!(out, "\n[latency]");
    for (k, v) in [
        ("int_alu", l.int_alu),
        ("int_mul", l.int_mul),
        ("int_div", l.int_div),
        ("fp_add", l.fp_add),
        ("fp_mul", l.fp_mul),
        ("fp_div", l.fp_div),
        ("fp_sqrt", l.fp_sqrt),
        ("fp_cvt", l.fp_cvt),
        ("fp_mov", l.fp_mov),
        ("simd_alu", l.simd_alu),
        ("simd_mul", l.simd_mul),
        ("simd_fp_add", l.simd_fp_add),
        ("simd_fp_mul", l.simd_fp_mul),
        ("simd_fma", l.simd_fma),
    ] {
        let _ = writeln!(out, "{k} = {v}");
    }

    let io = &p.core.inorder;
    let _ = writeln!(out, "\n[inorder]");
    let _ = writeln!(out, "issue_width = {}", io.issue_width);
    let _ = writeln!(out, "int_alu_units = {}", io.int_alu_units);
    let _ = writeln!(out, "fp_units = {}", io.fp_units);
    let _ = writeln!(out, "div_blocking = {}", io.div_blocking);
    let _ = writeln!(out, "store_buffer = {}", io.store_buffer);
    let _ = writeln!(out, "mem_per_cycle = {}", io.mem_per_cycle);

    let o = &p.core.ooo;
    let _ = writeln!(out, "\n[ooo]");
    let _ = writeln!(out, "dispatch_width = {}", o.dispatch_width);
    let _ = writeln!(out, "rob_entries = {}", o.rob_entries);
    let _ = writeln!(out, "iq_entries = {}", o.iq_entries);
    let _ = writeln!(out, "lq_entries = {}", o.lq_entries);
    let _ = writeln!(out, "sq_entries = {}", o.sq_entries);
    let _ = writeln!(out, "retire_width = {}", o.retire_width);
    let _ = writeln!(out, "int_alu_ports = {}", o.ports.int_alu);
    let _ = writeln!(out, "int_mul_ports = {}", o.ports.int_mul);
    let _ = writeln!(out, "fp_ports = {}", o.ports.fp);
    let _ = writeln!(out, "load_ports = {}", o.ports.load);
    let _ = writeln!(out, "store_ports = {}", o.ports.store);
    let _ = writeln!(out, "branch_ports = {}", o.ports.branch);
    let _ = writeln!(out, "stlf_latency = {}", o.stlf_latency);
    let _ = writeln!(out, "div_blocking = {}", o.div_blocking);

    for (name, c) in [("l1i", &p.mem.l1i), ("l1d", &p.mem.l1d), ("l2", &p.mem.l2)] {
        let _ = writeln!(out, "\n[{name}]");
        let _ = writeln!(out, "size_kb = {}", c.size_kb);
        let _ = writeln!(out, "assoc = {}", c.assoc);
        let _ = writeln!(out, "line_bytes = {}", c.line_bytes);
        let _ = writeln!(out, "latency = {}", c.latency);
        let _ = writeln!(out, "replacement = {}", c.replacement);
        let _ = writeln!(out, "hash = {}", c.hash);
        let _ = writeln!(out, "tag_access = {}", c.tag_access);
        let _ = writeln!(out, "ports = {}", c.ports);
        let _ = writeln!(out, "mshrs = {}", c.mshrs);
        let _ = writeln!(out, "victim_entries = {}", c.victim_entries);
        let _ = writeln!(out, "write_allocate = {}", c.write_allocate);
    }

    let _ = writeln!(out, "\n[dram]");
    let _ = writeln!(out, "latency = {}", p.mem.dram.latency);
    let _ = writeln!(out, "bytes_per_cycle = {}", p.mem.dram.bytes_per_cycle);

    let _ = writeln!(out, "\n[tlb]");
    match &p.mem.tlb {
        None => {
            let _ = writeln!(out, "modelled = false");
        }
        Some(t) => {
            let _ = writeln!(out, "modelled = true");
            let _ = writeln!(out, "entries = {}", t.entries);
            let _ = writeln!(out, "page_bytes = {}", t.page_bytes);
            let _ = writeln!(out, "miss_penalty = {}", t.miss_penalty);
        }
    }

    let _ = writeln!(out, "\n[prefetch]");
    match p.mem.prefetcher {
        PrefetcherConfig::None => {
            let _ = writeln!(out, "kind = none");
        }
        PrefetcherConfig::NextLine => {
            let _ = writeln!(out, "kind = next_line");
        }
        PrefetcherConfig::Stride {
            table_entries,
            degree,
        } => {
            let _ = writeln!(out, "kind = stride");
            let _ = writeln!(out, "table_entries = {table_entries}");
            let _ = writeln!(out, "degree = {degree}");
        }
        PrefetcherConfig::Ghb {
            buffer_entries,
            index_entries,
            degree,
        } => {
            let _ = writeln!(out, "kind = ghb");
            let _ = writeln!(out, "buffer_entries = {buffer_entries}");
            let _ = writeln!(out, "table_entries = {index_entries}");
            let _ = writeln!(out, "degree = {degree}");
        }
    }
    let _ = writeln!(
        out,
        "where = {}",
        match p.mem.prefetch_where {
            PrefetchWhere::L1 => "l1",
            PrefetchWhere::L2 => "l2",
        }
    );
    let _ = writeln!(out, "on_prefetch_hit = {}", p.mem.prefetch_on_prefetch_hit);
    out
}

/// Flat `section.key -> value` view of a config file.
struct Parsed {
    map: BTreeMap<String, String>,
}

impl Parsed {
    fn get(&self, key: &str) -> Result<&str, ConfigError> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ConfigError::MissingKey(key.to_string()))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ConfigError> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| ConfigError::BadValue {
            key: key.to_string(),
            value: raw.to_string(),
        })
    }
}

fn parse_sections(text: &str) -> Result<Parsed, ConfigError> {
    let mut map = BTreeMap::new();
    let mut section = String::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(ConfigError::BadLine { line: no + 1 });
        };
        map.insert(format!("{section}.{}", k.trim()), v.trim().to_string());
    }
    Ok(Parsed { map })
}

fn cache_from(parsed: &Parsed, name: &str) -> Result<CacheConfig, ConfigError> {
    let key = |k: &str| format!("{name}.{k}");
    let bad = |k: &str, v: &str| ConfigError::BadValue {
        key: key(k),
        value: v.to_string(),
    };
    let replacement = match parsed.get(&key("replacement"))? {
        "lru" => Replacement::Lru,
        "plru" => Replacement::PseudoLru,
        "random" => Replacement::Random,
        "fifo" => Replacement::Fifo,
        v => return Err(bad("replacement", v)),
    };
    let hash = match parsed.get(&key("hash"))? {
        "mask" => IndexHash::Mask,
        "xor" => IndexHash::Xor,
        "mersenne" => IndexHash::MersenneMod,
        v => return Err(bad("hash", v)),
    };
    let tag_access = match parsed.get(&key("tag_access"))? {
        "parallel" => TagAccess::Parallel,
        "serial" => TagAccess::Serial,
        v => return Err(bad("tag_access", v)),
    };
    Ok(CacheConfig {
        size_kb: parsed.num(&key("size_kb"))?,
        assoc: parsed.num(&key("assoc"))?,
        line_bytes: parsed.num(&key("line_bytes"))?,
        latency: parsed.num(&key("latency"))?,
        replacement,
        hash,
        tag_access,
        ports: parsed.num(&key("ports"))?,
        mshrs: parsed.num(&key("mshrs"))?,
        victim_entries: parsed.num(&key("victim_entries"))?,
        write_allocate: parsed.num(&key("write_allocate"))?,
    })
}

/// Parses a platform from config-file text.
///
/// # Errors
///
/// Returns [`ConfigError`] on malformed lines, missing keys or
/// unparseable values.
pub fn from_text(text: &str) -> Result<Platform, ConfigError> {
    let parsed = parse_sections(text)?;
    let bad = |key: &str, v: &str| ConfigError::BadValue {
        key: key.to_string(),
        value: v.to_string(),
    };

    let mut p = match parsed.get("platform.core_kind")? {
        "in_order" => Platform::a53_like(),
        "out_of_order" => Platform::a72_like(),
        v => return Err(bad("platform.core_kind", v)),
    };
    p.name = parsed.get("platform.name")?.to_string();
    p.core.frequency_ghz = parsed.num("platform.frequency_ghz")?;

    p.core.frontend.fetch_width = parsed.num("frontend.fetch_width")?;
    p.core.frontend.depth = parsed.num("frontend.depth")?;

    let tb: u8 = parsed.num("branch.table_bits")?;
    let hb: u8 = parsed.num("branch.history_bits")?;
    let direction = match parsed.get("branch.predictor")? {
        "static_taken" => DirPredictorConfig::StaticTaken,
        "static_not_taken" => DirPredictorConfig::StaticNotTaken,
        "bimodal" => DirPredictorConfig::Bimodal { table_bits: tb },
        "gshare" => DirPredictorConfig::Gshare {
            table_bits: tb,
            history_bits: hb,
        },
        "tournament" => DirPredictorConfig::Tournament {
            table_bits: tb,
            history_bits: hb,
        },
        v => return Err(bad("branch.predictor", v)),
    };
    let indirect = match parsed.get("branch.indirect")? {
        "btb_only" => IndirectPredictorConfig::BtbOnly,
        "path_history" => IndirectPredictorConfig::PathHistory {
            table_bits: parsed.num("branch.indirect_table_bits")?,
            history_bits: parsed.num("branch.indirect_history_bits")?,
        },
        v => return Err(bad("branch.indirect", v)),
    };
    p.core.branch = BranchConfig {
        direction,
        btb_entries: parsed.num("branch.btb_entries")?,
        btb_ways: parsed.num("branch.btb_ways")?,
        indirect,
        ras_entries: parsed.num("branch.ras_entries")?,
        mispredict_penalty: parsed.num("branch.mispredict_penalty")?,
        btb_miss_penalty: parsed.num("branch.btb_miss_penalty")?,
    };

    let l = &mut p.core.lat;
    l.int_alu = parsed.num("latency.int_alu")?;
    l.int_mul = parsed.num("latency.int_mul")?;
    l.int_div = parsed.num("latency.int_div")?;
    l.fp_add = parsed.num("latency.fp_add")?;
    l.fp_mul = parsed.num("latency.fp_mul")?;
    l.fp_div = parsed.num("latency.fp_div")?;
    l.fp_sqrt = parsed.num("latency.fp_sqrt")?;
    l.fp_cvt = parsed.num("latency.fp_cvt")?;
    l.fp_mov = parsed.num("latency.fp_mov")?;
    l.simd_alu = parsed.num("latency.simd_alu")?;
    l.simd_mul = parsed.num("latency.simd_mul")?;
    l.simd_fp_add = parsed.num("latency.simd_fp_add")?;
    l.simd_fp_mul = parsed.num("latency.simd_fp_mul")?;
    l.simd_fma = parsed.num("latency.simd_fma")?;

    let io = &mut p.core.inorder;
    io.issue_width = parsed.num("inorder.issue_width")?;
    io.int_alu_units = parsed.num("inorder.int_alu_units")?;
    io.fp_units = parsed.num("inorder.fp_units")?;
    io.div_blocking = parsed.num("inorder.div_blocking")?;
    io.store_buffer = parsed.num("inorder.store_buffer")?;
    io.mem_per_cycle = parsed.num("inorder.mem_per_cycle")?;

    let o = &mut p.core.ooo;
    o.dispatch_width = parsed.num("ooo.dispatch_width")?;
    o.rob_entries = parsed.num("ooo.rob_entries")?;
    o.iq_entries = parsed.num("ooo.iq_entries")?;
    o.lq_entries = parsed.num("ooo.lq_entries")?;
    o.sq_entries = parsed.num("ooo.sq_entries")?;
    o.retire_width = parsed.num("ooo.retire_width")?;
    o.ports.int_alu = parsed.num("ooo.int_alu_ports")?;
    o.ports.int_mul = parsed.num("ooo.int_mul_ports")?;
    o.ports.fp = parsed.num("ooo.fp_ports")?;
    o.ports.load = parsed.num("ooo.load_ports")?;
    o.ports.store = parsed.num("ooo.store_ports")?;
    o.ports.branch = parsed.num("ooo.branch_ports")?;
    o.stlf_latency = parsed.num("ooo.stlf_latency")?;
    o.div_blocking = parsed.num("ooo.div_blocking")?;

    p.mem.l1i = cache_from(&parsed, "l1i")?;
    p.mem.l1d = cache_from(&parsed, "l1d")?;
    p.mem.l2 = cache_from(&parsed, "l2")?;
    p.mem.dram.latency = parsed.num("dram.latency")?;
    p.mem.dram.bytes_per_cycle = parsed.num("dram.bytes_per_cycle")?;

    p.mem.tlb = if parsed.num::<bool>("tlb.modelled")? {
        Some(TlbConfig {
            entries: parsed.num("tlb.entries")?,
            page_bytes: parsed.num("tlb.page_bytes")?,
            miss_penalty: parsed.num("tlb.miss_penalty")?,
        })
    } else {
        None
    };

    p.mem.prefetcher = match parsed.get("prefetch.kind")? {
        "none" => PrefetcherConfig::None,
        "next_line" => PrefetcherConfig::NextLine,
        "stride" => PrefetcherConfig::Stride {
            table_entries: parsed.num("prefetch.table_entries")?,
            degree: parsed.num("prefetch.degree")?,
        },
        "ghb" => PrefetcherConfig::Ghb {
            buffer_entries: parsed.num("prefetch.buffer_entries")?,
            index_entries: parsed.num("prefetch.table_entries")?,
            degree: parsed.num("prefetch.degree")?,
        },
        v => return Err(bad("prefetch.kind", v)),
    };
    p.mem.prefetch_where = match parsed.get("prefetch.where")? {
        "l1" => PrefetchWhere::L1,
        "l2" => PrefetchWhere::L2,
        v => return Err(bad("prefetch.where", v)),
    };
    p.mem.prefetch_on_prefetch_hit = parsed.num("prefetch.on_prefetch_hit")?;

    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_roundtrip_exactly() {
        for p in [Platform::a53_like(), Platform::a72_like()] {
            let text = to_text(&p);
            let back = from_text(&text).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn modified_platforms_roundtrip() {
        let mut p = Platform::a72_like();
        p.name = "my tuned model".into();
        p.core.branch.direction = DirPredictorConfig::Tournament {
            table_bits: 13,
            history_bits: 9,
        };
        p.core.branch.indirect = IndirectPredictorConfig::PathHistory {
            table_bits: 9,
            history_bits: 7,
        };
        p.mem.prefetcher = PrefetcherConfig::Ghb {
            buffer_entries: 128,
            index_entries: 64,
            degree: 3,
        };
        p.mem.tlb = Some(TlbConfig {
            entries: 32,
            page_bytes: 4096,
            miss_penalty: 30,
        });
        p.mem.l2.hash = IndexHash::MersenneMod;
        p.mem.l2.replacement = Replacement::PseudoLru;
        let back = from_text(&to_text(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn malformed_input_is_rejected_with_positions() {
        assert_eq!(
            from_text("not a config"),
            Err(ConfigError::BadLine { line: 1 })
        );
        let text = to_text(&Platform::a53_like());
        let broken = text.replace("predictor = bimodal", "predictor = oracle");
        assert!(matches!(
            from_text(&broken),
            Err(ConfigError::BadValue { .. })
        ));
        let missing = text.replace("mispredict_penalty = ", "mispredict_penaltX = ");
        assert!(matches!(
            from_text(&missing),
            Err(ConfigError::MissingKey(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut text = String::from("# leading comment\n\n");
        text.push_str(&to_text(&Platform::a53_like()));
        assert!(from_text(&text).is_ok());
    }
}
