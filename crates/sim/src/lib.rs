//! # racesim-sim
//!
//! The trace-driven simulator driver — the equivalent of Sniper-ARM's
//! back-end glue (Figure 3 of the paper): it reads SIFT-style traces,
//! decodes instruction words through the decoder library (with a per-word
//! decode cache, as Sniper caches decoded instructions), feeds the dynamic
//! stream into a core timing model, and collects the statistics the
//! validation methodology compares against hardware.
//!
//! # Example
//!
//! ```
//! use racesim_sim::{Platform, Simulator};
//! use racesim_isa::{asm::Asm, Reg};
//! use racesim_trace::{TraceBuffer, TraceRecord};
//!
//! // A tiny trace: 100 independent adds.
//! let mut a = Asm::new();
//! a.addi(Reg::x(1), Reg::x(2), 1);
//! let p = a.finish();
//! let trace: TraceBuffer = (0..100)
//!     .map(|_| TraceRecord::plain(p.code_base, p.code[0]))
//!     .collect();
//!
//! let sim = Simulator::new(Platform::a53_like());
//! let stats = sim.run(&trace)?;
//! assert_eq!(stats.core.instructions, 100);
//! assert!(stats.cpi() > 0.0);
//! # Ok::<(), racesim_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod config_text;
mod platform;
mod simulator;

pub use batch::run_batch;
pub use platform::Platform;
pub use simulator::{SimError, SimOptions, SimStats, Simulator};
