//! Simulated platform description.

use racesim_mem::{CacheConfig, HierarchyConfig};
use racesim_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// A complete single-core platform: core timing model plus memory
/// hierarchy.
///
/// This is the unit of configuration the validation methodology tunes: the
/// paper counts "about a hundred parameters that define the simulated
/// processor", of which 64 are passed to irace. In this project those
/// parameters are fields of [`CoreConfig`] and
/// [`HierarchyConfig`]; the schema that exposes them to the
/// tuner lives in `racesim-core`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name (reports only).
    pub name: String,
    /// Core timing configuration.
    pub core: CoreConfig,
    /// Memory hierarchy configuration.
    pub mem: HierarchyConfig,
}

impl Platform {
    /// A platform resembling the publicly documented shape of a
    /// Cortex-A53: dual-issue in-order, 32 KiB L1I/L1D, 512 KiB L2.
    ///
    /// Values *not* publicly documented are left at generic defaults —
    /// exactly the situation the validation methodology starts from.
    pub fn a53_like() -> Platform {
        let mut mem = HierarchyConfig {
            l1i: CacheConfig {
                size_kb: 32,
                assoc: 2,
                latency: 2,
                ..CacheConfig::l1_default()
            },
            l1d: CacheConfig {
                size_kb: 32,
                assoc: 4,
                latency: 3,
                ..CacheConfig::l1_default()
            },
            l2: CacheConfig {
                size_kb: 512,
                assoc: 16,
                latency: 15,
                ..CacheConfig::l2_default()
            },
            ..HierarchyConfig::default()
        };
        mem.dram.latency = 170;
        Platform {
            name: "a53-like".to_string(),
            core: CoreConfig::in_order_default(),
            mem,
        }
    }

    /// A platform resembling the publicly documented shape of a
    /// Cortex-A72: 3-wide out-of-order, 48 KiB L1I, 32 KiB L1D, 1 MiB L2.
    pub fn a72_like() -> Platform {
        let mut mem = HierarchyConfig {
            l1i: CacheConfig {
                size_kb: 48,
                assoc: 3,
                latency: 2,
                ..CacheConfig::l1_default()
            },
            l1d: CacheConfig {
                size_kb: 32,
                assoc: 2,
                latency: 4,
                ..CacheConfig::l1_default()
            },
            l2: CacheConfig {
                size_kb: 1024,
                assoc: 16,
                latency: 18,
                ..CacheConfig::l2_default()
            },
            ..HierarchyConfig::default()
        };
        mem.dram.latency = 190;
        mem.dram.bytes_per_cycle = 16;
        Platform {
            name: "a72-like".to_string(),
            core: CoreConfig::out_of_order_default(),
            mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometries_are_consistent() {
        let a53 = Platform::a53_like();
        assert_eq!(a53.mem.l1d.num_sets(), 128);
        assert_eq!(a53.mem.l1i.num_sets(), 256);
        let a72 = Platform::a72_like();
        assert_eq!(a72.mem.l1i.num_sets(), 256);
        assert_eq!(a72.mem.l1d.num_sets(), 256);
        assert_ne!(a53.core.kind, a72.core.kind);
    }
}
