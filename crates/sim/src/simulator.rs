//! Trace replay through a timing model.

use crate::platform::Platform;
use racesim_decoder::{DecodeError, Decoder};
use racesim_isa::{DynInst, EncodedInst, StaticInst};
use racesim_mem::{HierarchyStats, MemoryHierarchy};
use racesim_telemetry::{Counter, Histogram, PhaseTimer, Profiler, Telemetry};
use racesim_trace::{TraceBuffer, TraceRecord};
use racesim_uarch::{CoreConfig, CoreKind, CoreModel, CoreStats, InOrderCore, OooCore};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An instruction word in the trace failed to decode.
    Decode {
        /// Program counter of the offending record.
        pc: u64,
        /// The decoder's error.
        source: DecodeError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Decode { pc, source } => {
                write!(f, "decode failure at pc {pc:#x}: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Decode { source, .. } => Some(source),
        }
    }
}

/// Per-run options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// Pre-install every code line touched by the trace (warm I-cache).
    pub prefill_code: bool,
    /// Pre-install every data line touched by the trace (warm D-side) —
    /// the "initializing the arrays prior to simulation" remedy from the
    /// paper's Section IV-B.
    pub prefill_data: bool,
    /// Pre-install touched data lines into the L2 only (kernel
    /// zero-fill-on-first-touch warmth; used by the reference hardware).
    pub prefill_data_l2: bool,
}

/// Statistics from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Core-side counters (instructions, cycles, branches).
    pub core: CoreStats,
    /// Memory-side counters.
    pub mem: HierarchyStats,
}

impl SimStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.core.cpi()
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.core.ipc()
    }
}

fn build_core(cfg: &CoreConfig) -> Box<dyn CoreModel> {
    match cfg.kind {
        CoreKind::InOrder => Box::new(InOrderCore::new(cfg)),
        CoreKind::OutOfOrder => Box::new(OooCore::new(cfg)),
    }
}

/// The trace-driven simulator.
///
/// A `Simulator` owns a platform description and a decoder; each call to
/// [`Simulator::run`] builds fresh core and memory state, so one simulator
/// can be reused (and shared across threads) for many runs.
#[derive(Debug, Clone)]
pub struct Simulator {
    platform: Platform,
    decoder: Decoder,
    options: SimOptions,
    metrics: SimMetrics,
    prof: SimProf,
}

/// Self-profiler phases resolved once at attach time. The phase tree a
/// profiled run produces:
///
/// ```text
/// simulate
///   prefill          cache warming passes
///   fetch            trace → DynInst conversion
///     decode         decoder calls on decode-cache misses
///   execute          core model + memory hierarchy
///     mem            l1 / l2 / dram / tlb (wall + latency cycles)
///     core           per-cause stall cycles from the core model
/// ```
///
/// The unprofiled path is untouched: `run_records` branches once on
/// [`SimProf::on`] and otherwise runs the exact pre-profiler loop.
#[derive(Debug, Clone, Default)]
struct SimProf {
    profiler: Profiler,
    simulate: PhaseTimer,
    prefill: PhaseTimer,
    fetch: PhaseTimer,
    decode: PhaseTimer,
    execute: PhaseTimer,
    mem: PhaseTimer,
    core: PhaseTimer,
}

impl SimProf {
    fn new(profiler: Profiler) -> SimProf {
        let simulate = profiler.timer("simulate");
        let prefill = simulate.child("prefill");
        let fetch = simulate.child("fetch");
        let decode = fetch.child("decode");
        let execute = simulate.child("execute");
        let mem = execute.child("mem");
        let core = execute.child("core");
        SimProf {
            profiler,
            simulate,
            prefill,
            fetch,
            decode,
            execute,
            mem,
            core,
        }
    }

    fn on(&self) -> bool {
        self.profiler.is_enabled()
    }
}

/// Records per timing chunk in the profiled path: two clock reads per
/// chunk keep the timing overhead amortised to well under a nanosecond
/// per instruction.
const PROFILE_CHUNK: usize = 2048;

/// Telemetry handles resolved once at attach time, so each run pays only
/// the atomic updates (or nothing, when telemetry is disabled).
#[derive(Debug, Clone, Default)]
struct SimMetrics {
    telemetry: Telemetry,
    runs: Counter,
    instructions: Counter,
    cycles: Counter,
    run_us: Histogram,
    /// Simulation throughput per evaluation, in simulated instructions
    /// per wall-clock millisecond.
    inst_per_ms: Histogram,
}

impl SimMetrics {
    fn new(telemetry: Telemetry) -> SimMetrics {
        SimMetrics {
            runs: telemetry.counter("sim.runs"),
            instructions: telemetry.counter("sim.instructions"),
            cycles: telemetry.counter("sim.cycles"),
            run_us: telemetry.histogram("sim.run_us"),
            inst_per_ms: telemetry.histogram("sim.inst_per_ms"),
            telemetry,
        }
    }
}

impl Simulator {
    /// Creates a simulator with a bug-free decoder and default options.
    pub fn new(platform: Platform) -> Simulator {
        Simulator {
            platform,
            decoder: Decoder::new(),
            options: SimOptions::default(),
            metrics: SimMetrics::default(),
            prof: SimProf::default(),
        }
    }

    /// Creates a simulator with an explicit decoder (e.g. the quirky
    /// "Capstone-like" one) and options.
    pub fn with_decoder(platform: Platform, decoder: Decoder, options: SimOptions) -> Simulator {
        Simulator {
            platform,
            decoder,
            options,
            metrics: SimMetrics::default(),
            prof: SimProf::default(),
        }
    }

    /// Attaches a telemetry handle: every run records instruction/cycle
    /// counts, wall time, and throughput. Costs nothing when `telemetry`
    /// is disabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Simulator {
        self.metrics = SimMetrics::new(telemetry);
        self
    }

    /// Attaches a self-profiler: runs switch to a chunked, per-phase
    /// timed replay that attributes wall time to `simulate` → `fetch` /
    /// `decode` / `execute` / `mem` phases and feeds the core model's
    /// stall-cycle attribution into a `core` sub-tree. With a disabled
    /// `profiler` the pre-profiler replay loop runs unchanged.
    pub fn with_profiler(mut self, profiler: Profiler) -> Simulator {
        self.prof = if profiler.is_enabled() {
            SimProf::new(profiler)
        } else {
            SimProf::default()
        };
        self
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Replays a trace through the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] if the trace contains an undecodable
    /// word.
    pub fn run(&self, trace: &TraceBuffer) -> Result<SimStats, SimError> {
        self.run_records(trace.records())
    }

    /// Replays a record slice through the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] if the trace contains an undecodable
    /// word.
    pub fn run_records(&self, records: &[TraceRecord]) -> Result<SimStats, SimError> {
        let sw = self.metrics.telemetry.stopwatch();
        let profiled = self.prof.on();
        let t_run = profiled.then(Instant::now);
        let mut core = build_core(&self.platform.core);
        let mut mem = MemoryHierarchy::new(&self.platform.mem);
        if profiled {
            core.set_phase_accounting(true);
            mem.attach_profiler(&self.prof.mem);
        }

        if self.options.prefill_code || self.options.prefill_data || self.options.prefill_data_l2 {
            self.prof.prefill.time(|| {
                for r in records {
                    if self.options.prefill_code {
                        mem.prefill_code(r.pc());
                    }
                    if let Some(ea) = r.ea() {
                        if self.options.prefill_data {
                            mem.prefill_data(ea);
                        } else if self.options.prefill_data_l2 {
                            mem.prefill_data_l2(ea);
                        }
                    }
                }
            });
        }

        if profiled {
            self.replay_profiled(core.as_mut(), &mut mem, records)?;
        } else {
            self.replay(core.as_mut(), &mut mem, records)?;
        }
        let stats = SimStats {
            core: core.stats(),
            mem: mem.stats(),
        };
        if let Some(t0) = t_run {
            self.prof.simulate.record_ns(t0.elapsed().as_nanos() as u64);
            self.prof.simulate.add_insts(stats.core.instructions);
            self.prof.simulate.add_cycles(stats.core.cycles);
            for (phase, cycles) in core.phase_cycles() {
                self.prof.core.child(phase).add_cycles(cycles);
            }
        }
        if self.metrics.telemetry.is_enabled() {
            let us = sw.elapsed_us();
            self.metrics.runs.inc();
            self.metrics.instructions.add(stats.core.instructions);
            self.metrics.cycles.add(stats.core.cycles);
            self.metrics.run_us.record(us);
            self.metrics
                .inst_per_ms
                .record(stats.core.instructions * 1000 / us.max(1));
        }
        Ok(stats)
    }

    /// Decodes one record through the shared decode cache.
    #[inline]
    fn decode_cached(
        &self,
        cache: &mut HashMap<EncodedInst, StaticInst>,
        r: &TraceRecord,
    ) -> Result<StaticInst, SimError> {
        match cache.get(&r.word()) {
            Some(s) => Ok(*s),
            None => {
                let s = self
                    .prof
                    .decode
                    .time(|| self.decoder.decode(r.word()))
                    .map_err(|source| SimError::Decode { pc: r.pc(), source })?;
                cache.insert(r.word(), s);
                Ok(s)
            }
        }
    }

    /// The unprofiled replay loop: byte-for-byte the pre-profiler hot
    /// path (the `decode` timer inside `decode_cached` is dead here).
    fn replay(
        &self,
        core: &mut dyn CoreModel,
        mem: &mut MemoryHierarchy,
        records: &[TraceRecord],
    ) -> Result<(), SimError> {
        let mut decode_cache: HashMap<EncodedInst, StaticInst> = HashMap::new();
        for r in records {
            let stat = self.decode_cached(&mut decode_cache, r)?;
            let dyn_inst = DynInst {
                pc: r.pc(),
                stat,
                ea: r.ea().unwrap_or(0),
                taken: r.taken(),
                target: r.target().unwrap_or(0),
            };
            core.consume(&dyn_inst, mem);
        }
        core.finish(mem);
        Ok(())
    }

    /// The profiled replay loop: identical simulation semantics (same
    /// per-record decode/consume order), but fetch and execute are
    /// timed per [`PROFILE_CHUNK`]-record chunk so clock reads amortise
    /// to a negligible per-instruction cost.
    fn replay_profiled(
        &self,
        core: &mut dyn CoreModel,
        mem: &mut MemoryHierarchy,
        records: &[TraceRecord],
    ) -> Result<(), SimError> {
        let mut decode_cache: HashMap<EncodedInst, StaticInst> = HashMap::new();
        let mut dyn_insts: Vec<DynInst> = Vec::with_capacity(PROFILE_CHUNK);
        for chunk in records.chunks(PROFILE_CHUNK) {
            let t0 = Instant::now();
            dyn_insts.clear();
            for r in chunk {
                let stat = self.decode_cached(&mut decode_cache, r)?;
                dyn_insts.push(DynInst {
                    pc: r.pc(),
                    stat,
                    ea: r.ea().unwrap_or(0),
                    taken: r.taken(),
                    target: r.target().unwrap_or(0),
                });
            }
            self.prof
                .fetch
                .add(chunk.len() as u64, t0.elapsed().as_nanos() as u64);
            let t1 = Instant::now();
            for dyn_inst in &dyn_insts {
                core.consume(dyn_inst, mem);
            }
            self.prof
                .execute
                .add(chunk.len() as u64, t1.elapsed().as_nanos() as u64);
        }
        let t2 = Instant::now();
        core.finish(mem);
        self.prof.execute.add(0, t2.elapsed().as_nanos() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Reg};
    use racesim_trace::TraceRecord;

    fn loop_trace(iters: usize) -> TraceBuffer {
        // A 3-instruction loop body re-executed `iters` times at fixed pcs.
        let mut a = Asm::new();
        a.addi(Reg::x(1), Reg::x(1), 1);
        a.ldr8(Reg::x(2), Reg::x(3), 0);
        let l = a.here();
        a.b(l);
        let p = a.finish();
        let mut t = TraceBuffer::new();
        for _ in 0..iters {
            racesim_trace::TraceSink::push(&mut t, TraceRecord::plain(p.pc_of(0), p.code[0]))
                .unwrap();
            racesim_trace::TraceSink::push(
                &mut t,
                TraceRecord::memory(p.pc_of(1), p.code[1], 0x8000),
            )
            .unwrap();
            racesim_trace::TraceSink::push(
                &mut t,
                TraceRecord::branch(p.pc_of(2), p.code[2], true, p.pc_of(0)),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn runs_on_both_core_kinds() {
        let t = loop_trace(500);
        let s53 = Simulator::new(Platform::a53_like()).run(&t).unwrap();
        let s72 = Simulator::new(Platform::a72_like()).run(&t).unwrap();
        assert_eq!(s53.core.instructions, 1500);
        assert_eq!(s72.core.instructions, 1500);
        assert!(s53.cpi() > 0.3 && s53.cpi() < 5.0, "{}", s53.cpi());
        assert!(s72.cpi() > 0.3 && s72.cpi() < 5.0, "{}", s72.cpi());
    }

    #[test]
    fn decode_cache_and_errors() {
        let mut t = loop_trace(2);
        // Append a record with an undecodable word.
        racesim_trace::TraceSink::push(
            &mut t,
            TraceRecord::plain(0xdead0, racesim_isa::EncodedInst(0xfe)),
        )
        .unwrap();
        let err = Simulator::new(Platform::a53_like()).run(&t).unwrap_err();
        assert!(matches!(err, SimError::Decode { pc: 0xdead0, .. }));
        assert!(err.to_string().contains("0xdead0"));
    }

    #[test]
    fn prefill_data_removes_cold_misses() {
        let t = loop_trace(100);
        let plat = Platform::a53_like();
        let cold = Simulator::new(plat.clone()).run(&t).unwrap();
        let warm = Simulator::with_decoder(
            plat,
            Decoder::new(),
            SimOptions {
                prefill_code: true,
                prefill_data: true,
                prefill_data_l2: false,
            },
        )
        .run(&t)
        .unwrap();
        assert!(warm.core.cycles < cold.core.cycles);
        assert_eq!(warm.mem.l1d.misses, 0, "all data prefilled");
    }

    #[test]
    fn profiled_run_matches_plain_run_and_builds_the_phase_tree() {
        let t = loop_trace(3000);
        let plat = Platform::a53_like();
        let plain = Simulator::new(plat.clone()).run(&t).unwrap();

        let prof = Profiler::enabled();
        let sim = Simulator::new(plat).with_profiler(prof.clone());
        let profiled = sim.run(&t).unwrap();
        assert_eq!(profiled, plain, "profiling must not change simulation");

        let snap = prof.snapshot();
        let simulate = snap.find(&["simulate"]).expect("root phase");
        assert_eq!(simulate.count, 1);
        assert_eq!(simulate.insts, plain.core.instructions);
        assert_eq!(simulate.cycles, plain.core.cycles);
        for path in [
            vec!["simulate", "fetch"],
            vec!["simulate", "fetch", "decode"],
            vec!["simulate", "execute"],
            vec!["simulate", "execute", "mem"],
            vec!["simulate", "execute", "mem", "l1"],
            vec!["simulate", "execute", "core"],
            vec!["simulate", "execute", "core", "deps"],
        ] {
            assert!(snap.find(&path).is_some(), "missing phase {path:?}");
        }
        let fetch = snap.find(&["simulate", "fetch"]).unwrap();
        let execute = snap.find(&["simulate", "execute"]).unwrap();
        assert_eq!(fetch.count, 9000);
        assert!(execute.count >= 9000);
        // Chunked fetch + execute cover nearly all of the run.
        assert!(
            fetch.total_ns + execute.total_ns >= simulate.total_ns * 9 / 10,
            "fetch {} + execute {} vs simulate {}",
            fetch.total_ns,
            execute.total_ns,
            simulate.total_ns
        );
        // The loop load hits L1 after warmup, so l1 accounts accesses.
        let l1 = snap.find(&["simulate", "execute", "mem", "l1"]).unwrap();
        assert!(l1.count > 1000, "l1 accesses recorded: {}", l1.count);

        // A disabled profiler keeps the plain path.
        let off = Simulator::new(Platform::a53_like()).with_profiler(Profiler::disabled());
        assert_eq!(off.run(&t).unwrap(), plain);
    }

    #[test]
    fn quirky_decoder_slows_fp_loops() {
        // Independent fadds: the quirky decoder serialises them through
        // the false dest-as-source dependency.
        let mut a = Asm::new();
        a.fadd(Reg::v(1), Reg::v(2), Reg::v(3));
        let p = a.finish();
        let t: TraceBuffer = (0..500)
            .map(|_| TraceRecord::plain(p.code_base, p.code[0]))
            .collect();
        let plat = Platform::a53_like();
        let fixed = Simulator::new(plat.clone()).run(&t).unwrap();
        let quirky = Simulator::with_decoder(
            plat,
            Decoder::with_quirks(racesim_decoder::Quirks::capstone_like()),
            SimOptions::default(),
        )
        .run(&t)
        .unwrap();
        assert!(
            quirky.core.cycles as f64 > fixed.core.cycles as f64 * 2.0,
            "quirk serialises: {} vs {}",
            quirky.core.cycles,
            fixed.core.cycles
        );
    }
}
