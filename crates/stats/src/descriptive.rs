//! Descriptive statistics.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator); 0 with fewer than two
/// observations.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (n denominator); 0 for an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
    }
}
