//! Special functions and tail probabilities.
//!
//! Implementations follow the classic series/continued-fraction
//! formulations (Abramowitz & Stegun; Numerical Recipes), accurate to well
//! beyond what hypothesis testing at α = 0.05 requires.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // The published Lanczos coefficients, kept digit-for-digit even where
    // they exceed f64 precision.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma P(a, x).
fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma Q(a, x) by continued fraction
/// (modified Lentz), valid for x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1e308;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = b + an / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-squared distribution with `k` degrees of
/// freedom: `P(X > x)`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn chi_squared_sf(x: f64, k: u32) -> f64 {
    assert!(k > 0, "chi-squared needs at least 1 degree of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    (1.0 - gamma_p(k as f64 / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Regularized incomplete beta I_x(a, b) by continued fraction.
fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    let symmetric = x >= (a + 1.0) / (a + b + 2.0);
    let (a, b, x) = if symmetric {
        (b, a, 1.0 - x)
    } else {
        (a, b, x)
    };

    // Modified Lentz on the standard continued fraction.
    let mut c = 1.0f64;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        // Even step.
        let num = m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        d = 1.0 / d;
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        h *= d * c;
        // Odd step.
        let num = -(a + m) * (a + b + m) * x / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
        d = 1.0 + num * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        d = 1.0 / d;
        c = 1.0 + num / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    let result = front * h / a;
    if symmetric {
        1.0 - result
    } else {
        result
    }
}

/// Two-sided survival probability of Student's t: `P(|T| > |t|)` with `df`
/// degrees of freedom.
///
/// # Panics
///
/// Panics if `df` is zero.
pub fn student_t_sf(t: f64, df: u32) -> f64 {
    assert!(df > 0, "t-test needs at least 1 degree of freedom");
    let df = df as f64;
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Survival function of the standard normal: `P(Z > z)`.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational approximation,
/// |error| < 1.2e-7, adequate for p-value thresholds).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..12u64 {
            let fact: u64 = (1..n).product();
            assert!(
                (ln_gamma(n as f64) - (fact as f64).ln()).abs() < 1e-9,
                "gamma({n})"
            );
        }
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn chi_squared_known_quantiles() {
        // P(X > 3.841) with 1 df = 0.05; P(X > 5.991) with 2 df = 0.05.
        assert!((chi_squared_sf(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_squared_sf(5.991, 2) - 0.05).abs() < 1e-3);
        assert!((chi_squared_sf(18.307, 10) - 0.05).abs() < 1e-3);
        assert_eq!(chi_squared_sf(0.0, 3), 1.0);
        assert!(chi_squared_sf(1000.0, 3) < 1e-10);
    }

    #[test]
    fn student_t_known_quantiles() {
        // Two-sided: P(|T| > 2.776) with 4 df = 0.05.
        assert!((student_t_sf(2.776, 4) - 0.05).abs() < 1e-3);
        assert!((student_t_sf(2.228, 10) - 0.05).abs() < 1e-3);
        assert!((student_t_sf(1.96, 1_000_000) - 0.05).abs() < 1e-3);
        assert!((student_t_sf(0.0, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_known_quantiles() {
        assert!((normal_sf(1.6449) - 0.05).abs() < 1e-4);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-4);
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(-1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn symmetry_properties() {
        for t in [0.5, 1.0, 2.0, 5.0] {
            assert!((student_t_sf(t, 7) - student_t_sf(-t, 7)).abs() < 1e-12);
        }
    }
}
