//! Error metrics used throughout the validation methodology, and the
//! typed error the hypothesis tests return on invalid input.

use std::fmt;

/// Why a hypothesis test rejected its input.
///
/// The racing layer feeds these tests with measured costs; a NaN that
/// slipped past the evaluation boundary, or a ragged matrix produced by a
/// bookkeeping bug, must surface as a typed error rather than silently
/// mis-ranking configurations (`NaN.partial_cmp` ties everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// An input value was NaN or infinite.
    NonFinite,
    /// The cost matrix rows have different lengths.
    Ragged,
    /// Fewer than two blocks (instances) were supplied.
    TooFewBlocks,
    /// Fewer than two configurations were supplied.
    TooFewConfigs,
    /// Paired samples differ in length.
    LengthMismatch,
    /// Fewer than two pairs were supplied.
    TooFewPairs,
    /// Every block is completely tied: the test statistic is undefined.
    AllTied,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            StatsError::NonFinite => "input contains a NaN or infinite value",
            StatsError::Ragged => "cost matrix rows have different lengths",
            StatsError::TooFewBlocks => "need at least two blocks",
            StatsError::TooFewConfigs => "need at least two configurations",
            StatsError::LengthMismatch => "paired samples differ in length",
            StatsError::TooFewPairs => "need at least two pairs",
            StatsError::AllTied => "every block is completely tied",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for StatsError {}

/// Absolute percentage error of `predicted` against `reference`, in
/// percent — the paper's per-benchmark "CPI error".
///
/// # Panics
///
/// Panics if `reference` is zero.
pub fn abs_pct_error(predicted: f64, reference: f64) -> f64 {
    assert!(reference != 0.0, "reference value must be non-zero");
    100.0 * ((predicted - reference) / reference).abs()
}

/// Signed percentage error (positive = over-prediction).
///
/// # Panics
///
/// Panics if `reference` is zero.
pub fn signed_pct_error(predicted: f64, reference: f64) -> f64 {
    assert!(reference != 0.0, "reference value must be non-zero");
    100.0 * (predicted - reference) / reference
}

/// Mean absolute percentage error over paired slices — the paper's
/// "average absolute CPI prediction error".
///
/// # Panics
///
/// Panics on length mismatch, empty input, or a zero reference.
pub fn mean_abs_pct_error(predicted: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(predicted.len(), reference.len(), "length mismatch");
    assert!(!predicted.is_empty(), "need at least one pair");
    predicted
        .iter()
        .zip(reference)
        .map(|(p, r)| abs_pct_error(*p, *r))
        .sum::<f64>()
        / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_errors() {
        assert!((abs_pct_error(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!((abs_pct_error(0.9, 1.0) - 10.0).abs() < 1e-9);
        assert!((signed_pct_error(0.9, 1.0) + 10.0).abs() < 1e-9);
        assert!((mean_abs_pct_error(&[1.1, 0.8], &[1.0, 1.0]) - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_reference_panics() {
        let _ = abs_pct_error(1.0, 0.0);
    }
}
