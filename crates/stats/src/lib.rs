//! # racesim-stats
//!
//! The statistical machinery behind iterated racing.
//!
//! irace eliminates configurations that "can be statistically proven to be
//! inferior to others" — by default with the Friedman rank test plus a
//! rank-sum post-hoc comparison, or alternatively paired t-tests. This
//! crate implements those tests from scratch (R is not available here),
//! together with the special functions they need and the error metrics the
//! validation methodology reports.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod descriptive;
mod dist;
mod error;
mod ranks;
mod tests;

pub use descriptive::{mean, population_variance, sample_std_dev, sample_variance};
pub use dist::{chi_squared_sf, ln_gamma, normal_sf, student_t_sf};
pub use error::{abs_pct_error, mean_abs_pct_error, signed_pct_error, StatsError};
pub use ranks::rank_with_ties;
pub use tests::{friedman_test, paired_t_test, wilcoxon_signed_rank, FriedmanOutcome};
