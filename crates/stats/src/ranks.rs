//! Ranking with tie handling.

/// Assigns ranks (1-based) to the values, giving tied values the average
/// of the ranks they span — the convention the Friedman and Wilcoxon tests
/// require.
///
/// # Example
///
/// ```
/// use racesim_stats::rank_with_ties;
/// assert_eq!(rank_with_ties(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn rank_with_ties(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Positions i..=j are tied; average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_ordering() {
        assert_eq!(rank_with_ties(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied() {
        assert_eq!(rank_with_ties(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ranks_sum_is_invariant() {
        let xs = [4.0, 4.0, 1.0, 7.0, 7.0, 7.0, 2.0];
        let n = xs.len() as f64;
        let sum: f64 = rank_with_ties(&xs).iter().sum();
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert!(rank_with_ties(&[]).is_empty());
        assert_eq!(rank_with_ties(&[9.0]), vec![1.0]);
    }
}
