//! Hypothesis tests used by the racing algorithm.

use crate::descriptive::{mean, sample_std_dev};
use crate::dist::{chi_squared_sf, normal_sf, student_t_sf};
use crate::error::StatsError;
use crate::ranks::rank_with_ties;

/// Result of a Friedman rank test across configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct FriedmanOutcome {
    /// The chi-squared distributed statistic (tie-corrected).
    pub statistic: f64,
    /// Two-sided p-value against the chi-squared(k−1) distribution.
    pub p_value: f64,
    /// Per-configuration rank sums (lower is better when costs are
    /// ranked ascending).
    pub rank_sums: Vec<f64>,
    /// Blocks (instances) used.
    pub blocks: usize,
}

/// Friedman rank test.
///
/// `costs[i][j]` is the cost of configuration `j` on instance (block) `i`;
/// every row must have the same length `k >= 2`, there must be at least
/// two rows, and every value must be finite. Invalid input is a typed
/// [`StatsError`]; [`StatsError::AllTied`] signals an undefined statistic
/// (no evidence of any difference), not a caller bug.
pub fn friedman_test(costs: &[Vec<f64>]) -> Result<FriedmanOutcome, StatsError> {
    let n = costs.len();
    if n < 2 {
        return Err(StatsError::TooFewBlocks);
    }
    let k = costs[0].len();
    if k < 2 {
        return Err(StatsError::TooFewConfigs);
    }
    if costs.iter().any(|row| row.len() != k) {
        return Err(StatsError::Ragged);
    }
    if costs.iter().flatten().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }

    let mut rank_sums = vec![0.0; k];
    let mut tie_correction = 0.0; // sum over blocks of (sum t^3 - t)
    for row in costs {
        let ranks = rank_with_ties(row);
        for (j, r) in ranks.iter().enumerate() {
            rank_sums[j] += r;
        }
        // Count tie group sizes in this row.
        let mut sorted = row.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_correction += t * t * t - t;
            i = j + 1;
        }
    }

    let n_f = n as f64;
    let k_f = k as f64;
    let sum_r2: f64 = rank_sums.iter().map(|r| r * r).sum();
    // Tie-corrected Friedman statistic (Conover).
    let numerator = 12.0 * sum_r2 - 3.0 * n_f * n_f * k_f * (k_f + 1.0) * (k_f + 1.0);
    let denominator = n_f * k_f * (k_f + 1.0) - tie_correction / (k_f - 1.0);
    if denominator <= 0.0 {
        return Err(StatsError::AllTied); // every block fully tied
    }
    let statistic = numerator / denominator;
    let p_value = chi_squared_sf(statistic.max(0.0), (k - 1) as u32);
    Ok(FriedmanOutcome {
        statistic,
        p_value,
        rank_sums,
        blocks: n,
    })
}

/// Checks both paired samples for shape and finiteness.
fn check_pairs(a: &[f64], b: &[f64], min_pairs: usize) -> Result<(), StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch);
    }
    if a.len() < min_pairs {
        return Err(StatsError::TooFewPairs);
    }
    if a.iter().chain(b).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite);
    }
    Ok(())
}

/// Two-sided paired t-test on paired observations.
///
/// Returns `(t, p)`; `p = 1` when the differences have zero variance
/// (no evidence either way) unless the mean difference is also non-zero
/// with zero variance, in which case `p = 0`. Mismatched lengths, fewer
/// than two pairs, or non-finite values are typed errors.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<(f64, f64), StatsError> {
    check_pairs(a, b, 2)?;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let m = mean(&diffs);
    let sd = sample_std_dev(&diffs);
    if sd == 0.0 {
        return Ok(if m == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY * m.signum(), 0.0)
        });
    }
    let t = m / (sd / (diffs.len() as f64).sqrt());
    let p = student_t_sf(t, (diffs.len() - 1) as u32);
    Ok((t, p))
}

/// Two-sided Wilcoxon signed-rank test (normal approximation with
/// continuity correction). Zero differences are dropped, per Wilcoxon's
/// original procedure. Returns `(w_plus, p)`; `p = 1` when every pair is
/// tied. Mismatched lengths or non-finite values are typed errors.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<(f64, f64), StatsError> {
    check_pairs(a, b, 0)?;
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return Ok((0.0, 1.0));
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = rank_with_ties(&abs);
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let n_f = n as f64;
    let mu = n_f * (n_f + 1.0) / 4.0;
    let sigma = (n_f * (n_f + 1.0) * (2.0 * n_f + 1.0) / 24.0).sqrt();
    if sigma == 0.0 {
        return Ok((w_plus, 1.0));
    }
    let z = (w_plus - mu).abs() - 0.5;
    let p = (2.0 * normal_sf(z.max(0.0) / sigma)).min(1.0);
    Ok((w_plus, p))
}

#[cfg(test)]
#[allow(clippy::module_inception)]
mod tests {
    use super::*;

    #[test]
    fn friedman_detects_a_dominant_configuration() {
        // Config 0 always best, config 2 always worst, 8 blocks.
        let costs: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![1.0 + i as f64, 2.0 + i as f64, 3.0 + i as f64])
            .collect();
        let out = friedman_test(&costs).unwrap();
        assert!(out.p_value < 0.01, "p = {}", out.p_value);
        assert!(out.rank_sums[0] < out.rank_sums[1]);
        assert!(out.rank_sums[1] < out.rank_sums[2]);
        assert_eq!(out.blocks, 8);
    }

    #[test]
    fn friedman_sees_no_signal_in_symmetric_noise() {
        // Rotating winners: no configuration dominates.
        let costs = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 1.0, 2.0],
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 1.0, 2.0],
        ];
        let out = friedman_test(&costs).unwrap();
        assert!(out.p_value > 0.5, "p = {}", out.p_value);
    }

    #[test]
    fn friedman_all_tied_is_a_typed_outcome() {
        let costs = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        assert_eq!(friedman_test(&costs), Err(StatsError::AllTied));
    }

    #[test]
    fn friedman_matches_r_reference() {
        // R: friedman.test(matrix(c(1,2,3, 1,3,2, 2,1,3, 1,2,3),
        //                   nrow=4, byrow=TRUE))
        // Friedman chi-squared = 4.5 ... p = 0.1054
        let costs = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.0, 3.0, 2.0],
            vec![2.0, 1.0, 3.0],
            vec![1.0, 2.0, 3.0],
        ];
        let out = friedman_test(&costs).unwrap();
        assert!((out.statistic - 4.5).abs() < 1e-9, "{}", out.statistic);
        assert!((out.p_value - 0.1054).abs() < 1e-3, "{}", out.p_value);
    }

    #[test]
    fn invalid_shapes_are_typed_errors() {
        assert_eq!(
            friedman_test(&[vec![1.0, 2.0], vec![1.0]]),
            Err(StatsError::Ragged)
        );
        assert_eq!(
            friedman_test(&[vec![1.0, 2.0]]),
            Err(StatsError::TooFewBlocks)
        );
        assert_eq!(
            friedman_test(&[vec![1.0], vec![2.0]]),
            Err(StatsError::TooFewConfigs)
        );
        assert_eq!(
            paired_t_test(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch)
        );
        assert_eq!(paired_t_test(&[1.0], &[1.0]), Err(StatsError::TooFewPairs));
        assert_eq!(
            wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch)
        );
    }

    #[test]
    fn non_finite_inputs_are_rejected_not_misranked() {
        let nan_matrix = vec![vec![1.0, f64::NAN], vec![2.0, 3.0]];
        assert_eq!(friedman_test(&nan_matrix), Err(StatsError::NonFinite));
        let inf_matrix = vec![vec![1.0, 2.0], vec![f64::INFINITY, 3.0]];
        assert_eq!(friedman_test(&inf_matrix), Err(StatsError::NonFinite));
        assert_eq!(
            paired_t_test(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFinite)
        );
        assert_eq!(
            wilcoxon_signed_rank(&[1.0, 2.0], &[f64::NEG_INFINITY, 2.0]),
            Err(StatsError::NonFinite)
        );
    }

    #[test]
    fn paired_t_detects_shift() {
        let a = [5.1, 4.9, 5.3, 5.0, 5.2, 5.1, 4.8, 5.0];
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let (t, p) = paired_t_test(&a, &b).unwrap();
        assert!(t < 0.0);
        assert!(p < 1e-6, "p = {p}");

        let (_, p_same) = paired_t_test(&a, &a).unwrap();
        assert!((p_same - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paired_t_no_signal_in_noise() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let (_, p) = paired_t_test(&a, &b).unwrap();
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn wilcoxon_detects_shift_and_ignores_ties() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 2.0).collect();
        let (_, p) = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(p < 0.001, "p = {p}");

        let (_, p_tied) = wilcoxon_signed_rank(&a, &a.clone()).unwrap();
        assert_eq!(p_tied, 1.0);
    }
}
