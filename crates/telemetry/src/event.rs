//! Typed journal events and their JSONL encoding.
//!
//! Every journal line is one flat JSON object: a `t` field (microseconds
//! since the telemetry handle's epoch), an `ev` discriminator, and the
//! event's own fields. The encoding is append-only friendly: a parser
//! must ignore keys it does not know, so future fields can be added
//! without breaking old readers.

use crate::json::{parse_object, Obj, Scalar};
use std::fmt;

/// A typed campaign event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A tuning campaign (or resumed segment) began.
    CampaignStart {
        /// RNG seed for the campaign.
        seed: u64,
        /// Total evaluation budget.
        budget: usize,
        /// Number of benchmark instances in the suite.
        n_instances: usize,
        /// Number of tunable parameters.
        n_params: usize,
    },
    /// The campaign's full launch configuration — everything a replay
    /// needs to rebuild the evaluation stack that is not already in
    /// [`Event::CampaignStart`]. Emitted once per segment, before the
    /// tuner starts.
    CampaignConfig {
        /// Core being tuned (`a53` or `a72`).
        core: String,
        /// Dynamic-instruction scale divisor.
        scale: u64,
        /// Fault-injection profile (`none`, `transient`, `aggressive`).
        faults: String,
        /// Seed of the fault plan.
        fault_seed: u64,
        /// Per-evaluation watchdog timeout in milliseconds (0 = none).
        timeout_ms: u64,
        /// Evaluation threads the segment ran with.
        threads: usize,
        /// Spawned worker processes the segment ran with (0 = all
        /// evaluations in-process). Like `threads`, a non-semantic
        /// dimension: it affects wall time only, never the outcome.
        workers: usize,
        /// Iteration cap for this segment (0 = run to completion).
        max_iterations: u64,
        /// Whether static CPI bounds elimination was enabled. Semantic:
        /// a replay must apply the same pre-race eliminations.
        static_bounds: bool,
    },
    /// One tuning dimension was pinned before any budget was spent
    /// (coverage-based freezing). Emitted once per frozen dimension so a
    /// replay reproduces the same effective search space.
    Frozen {
        /// Parameter name.
        param: String,
        /// Frozen value, in checkpoint code form (`C<i>`, `I<i>`, `F0`/`F1`).
        code: String,
    },
    /// A checkpoint was successfully applied; this segment continues an
    /// earlier campaign rather than starting fresh.
    Resume {
        /// First iteration the resumed run will execute.
        next_iteration: usize,
        /// Evaluations left in the budget after restoring state.
        budget_remaining: usize,
    },
    /// A racing iteration began.
    IterationStart {
        /// Iteration number (0-based, matching the tuner's history).
        iteration: usize,
        /// Number of candidate configurations entering the race.
        configs: usize,
    },
    /// A racing iteration finished.
    IterationEnd {
        /// Iteration number (0-based, matching the tuner's history).
        iteration: usize,
        /// Configurations still alive after elimination.
        survivors: usize,
        /// Best cost seen so far in the campaign.
        best_cost: f64,
        /// Evaluations spent in this iteration.
        evals: usize,
        /// Instance blocks raced in this iteration.
        blocks: usize,
        /// Wall time of the iteration in microseconds.
        micros: u64,
    },
    /// One configuration was evaluated on one workload (simulation ran
    /// and a cost was produced).
    Evaluation {
        /// Workload name.
        workload: String,
        /// Wall time of the evaluation in microseconds.
        micros: u64,
        /// Cost produced (may be non-finite for degenerate models).
        cost: f64,
    },
    /// One hardware measurement attempt completed.
    Measurement {
        /// Workload name.
        workload: String,
        /// Wall time of the measurement in microseconds.
        micros: u64,
        /// Whether the measurement succeeded.
        ok: bool,
    },
    /// A fault surfaced during evaluation or measurement.
    Fault {
        /// Fault class (`transient`, `instance`, `config`).
        kind: String,
        /// Workload the fault occurred on.
        workload: String,
        /// Human-readable description.
        reason: String,
    },
    /// A configuration was eliminated from the race.
    Elimination {
        /// Configuration identifier (parameter summary).
        config: String,
        /// Why it was eliminated (`statistical`, `failed`, `pruned`).
        kind: String,
        /// Instance blocks it survived before elimination.
        after_blocks: usize,
        /// Detail string (test statistic, failure reason, ...).
        reason: String,
    },
    /// A configuration was eliminated *before* racing by the static CPI
    /// bounds engine: its suite-wide cost lower bound already exceeds the
    /// incumbent's recorded cost, so simulating it cannot change the
    /// outcome.
    StaticEliminated {
        /// Configuration identifier (checkpoint code form).
        config: String,
        /// Iteration the elimination happened in (0-based).
        iteration: usize,
        /// The configuration's suite-wide cost lower bound.
        lower_bound: f64,
        /// The incumbent cost the bound was compared against.
        incumbent_cost: f64,
    },
    /// A benchmark instance was quarantined.
    Quarantine {
        /// Instance (workload) name.
        instance: String,
        /// Why it was quarantined.
        reason: String,
    },
    /// A checkpoint was written.
    Checkpoint {
        /// Iteration the checkpoint covers.
        iteration: usize,
        /// Path the checkpoint was saved to.
        path: String,
    },
    /// The campaign (or segment) finished.
    CampaignEnd {
        /// Best cost found.
        best_cost: f64,
        /// Total evaluations spent (cumulative across resumes).
        evals: usize,
        /// Total transient retries.
        retries: usize,
        /// Configurations eliminated by persistent failures.
        failed_configs: usize,
        /// Configurations pruned before racing.
        pruned: usize,
        /// Whether the campaign was aborted by cancellation.
        aborted: bool,
        /// Wall time of this segment in microseconds.
        micros: u64,
    },
    /// Final value of one counter.
    CounterFinal {
        /// Metric name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// Final value of one gauge.
    GaugeFinal {
        /// Metric name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A distributed evaluation worker process was spawned (or
    /// respawned after a failure).
    WorkerSpawned {
        /// Worker slot index (stable across respawns).
        worker: usize,
        /// OS process id of the spawned worker (0 when not applicable,
        /// e.g. in-memory loopback workers in tests).
        pid: u64,
    },
    /// A distributed evaluation worker failed (process exit, torn
    /// frame, handshake mismatch, or per-request timeout). Its in-flight
    /// request was re-dispatched; the failure never surfaces in the
    /// campaign outcome.
    WorkerFailed {
        /// Worker slot index.
        worker: usize,
        /// Classified failure description.
        reason: String,
    },
    /// A worker slot exhausted its respawn budget and was taken out of
    /// rotation for the rest of the campaign.
    WorkerQuarantined {
        /// Worker slot index.
        worker: usize,
        /// Total failures the slot accumulated before quarantine.
        failures: u64,
    },
    /// Final aggregates of one histogram.
    HistogramFinal {
        /// Metric name.
        name: String,
        /// Sample count.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// 50th percentile.
        p50: u64,
        /// 90th percentile.
        p90: u64,
        /// 99th percentile.
        p99: u64,
        /// Exact maximum.
        max: u64,
    },
}

impl Event {
    /// The `ev` discriminator string this event serializes under.
    pub fn name(&self) -> &'static str {
        match self {
            Event::CampaignStart { .. } => "campaign_start",
            Event::CampaignConfig { .. } => "campaign_config",
            Event::Frozen { .. } => "frozen",
            Event::Resume { .. } => "resume",
            Event::IterationStart { .. } => "iteration_start",
            Event::IterationEnd { .. } => "iteration_end",
            Event::Evaluation { .. } => "evaluation",
            Event::Measurement { .. } => "measurement",
            Event::Fault { .. } => "fault",
            Event::Elimination { .. } => "elimination",
            Event::StaticEliminated { .. } => "static_eliminated",
            Event::Quarantine { .. } => "quarantine",
            Event::Checkpoint { .. } => "checkpoint",
            Event::CampaignEnd { .. } => "campaign_end",
            Event::WorkerSpawned { .. } => "worker_spawned",
            Event::WorkerFailed { .. } => "worker_failed",
            Event::WorkerQuarantined { .. } => "worker_quarantined",
            Event::CounterFinal { .. } => "counter",
            Event::GaugeFinal { .. } => "gauge",
            Event::HistogramFinal { .. } => "histogram",
        }
    }
}

/// One journal line: a timestamp plus an event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Microseconds since the emitting telemetry handle's epoch.
    pub t_us: u64,
    /// The event.
    pub event: Event,
}

/// Why a journal line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The line is not a valid flat JSON object.
    Json(String),
    /// A required field is missing or has the wrong type.
    Field(String),
    /// The `ev` discriminator is unknown.
    UnknownEvent(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Json(e) => write!(f, "malformed journal line: {e}"),
            JournalError::Field(e) => write!(f, "bad journal field: {e}"),
            JournalError::UnknownEvent(e) => write!(f, "unknown event type {e:?}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Field accessors over a parsed flat object.
struct Fields(Vec<(String, Scalar)>);

impl Fields {
    fn raw(&self, key: &str) -> Result<&Scalar, JournalError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JournalError::Field(format!("missing {key:?}")))
    }

    fn str(&self, key: &str) -> Result<String, JournalError> {
        match self.raw(key)? {
            Scalar::Str(s) => Ok(s.clone()),
            other => Err(JournalError::Field(format!(
                "{key:?}: expected string, got {other:?}"
            ))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, JournalError> {
        match self.raw(key)? {
            Scalar::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| JournalError::Field(format!("{key:?}: bad integer {raw:?}"))),
            other => Err(JournalError::Field(format!(
                "{key:?}: expected integer, got {other:?}"
            ))),
        }
    }

    fn usize(&self, key: &str) -> Result<usize, JournalError> {
        self.u64(key).map(|v| v as usize)
    }

    /// Like [`Fields::usize`], but a *missing* key yields `default`
    /// (a present key of the wrong type is still an error). Used for
    /// fields added to an event after journals recording it already
    /// exist, per the append-only-friendly encoding contract.
    fn usize_or(&self, key: &str, default: usize) -> Result<usize, JournalError> {
        if self.0.iter().any(|(k, _)| k == key) {
            self.usize(key)
        } else {
            Ok(default)
        }
    }

    fn f64(&self, key: &str) -> Result<f64, JournalError> {
        match self.raw(key)? {
            Scalar::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| JournalError::Field(format!("{key:?}: bad float {raw:?}"))),
            // Non-finite floats are serialized as marker strings.
            Scalar::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(JournalError::Field(format!("{key:?}: bad float {other:?}"))),
            },
            other => Err(JournalError::Field(format!(
                "{key:?}: expected float, got {other:?}"
            ))),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, JournalError> {
        match self.raw(key)? {
            Scalar::Bool(b) => Ok(*b),
            other => Err(JournalError::Field(format!(
                "{key:?}: expected bool, got {other:?}"
            ))),
        }
    }

    /// Like [`Fields::bool`], but a *missing* key yields `default` (a
    /// present key of the wrong type is still an error). Same
    /// append-only-friendly contract as [`Fields::usize_or`].
    fn bool_or(&self, key: &str, default: bool) -> Result<bool, JournalError> {
        if self.0.iter().any(|(k, _)| k == key) {
            self.bool(key)
        } else {
            Ok(default)
        }
    }
}

impl JournalEntry {
    /// Renders the entry as one JSONL line (no trailing newline).
    pub fn render(&self) -> String {
        let mut o = Obj::new();
        o.u64("t", self.t_us);
        o.str("ev", self.event.name());
        match &self.event {
            Event::CampaignStart {
                seed,
                budget,
                n_instances,
                n_params,
            } => {
                o.u64("seed", *seed)
                    .u64("budget", *budget as u64)
                    .u64("n_instances", *n_instances as u64)
                    .u64("n_params", *n_params as u64);
            }
            Event::CampaignConfig {
                core,
                scale,
                faults,
                fault_seed,
                timeout_ms,
                threads,
                workers,
                max_iterations,
                static_bounds,
            } => {
                o.str("core", core)
                    .u64("scale", *scale)
                    .str("faults", faults)
                    .u64("fault_seed", *fault_seed)
                    .u64("timeout_ms", *timeout_ms)
                    .u64("threads", *threads as u64)
                    .u64("workers", *workers as u64)
                    .u64("max_iterations", *max_iterations)
                    .bool("static_bounds", *static_bounds);
            }
            Event::Frozen { param, code } => {
                o.str("param", param).str("code", code);
            }
            Event::Resume {
                next_iteration,
                budget_remaining,
            } => {
                o.u64("next_iteration", *next_iteration as u64)
                    .u64("budget_remaining", *budget_remaining as u64);
            }
            Event::IterationStart { iteration, configs } => {
                o.u64("iteration", *iteration as u64)
                    .u64("configs", *configs as u64);
            }
            Event::IterationEnd {
                iteration,
                survivors,
                best_cost,
                evals,
                blocks,
                micros,
            } => {
                o.u64("iteration", *iteration as u64)
                    .u64("survivors", *survivors as u64)
                    .f64("best_cost", *best_cost)
                    .u64("evals", *evals as u64)
                    .u64("blocks", *blocks as u64)
                    .u64("micros", *micros);
            }
            Event::Evaluation {
                workload,
                micros,
                cost,
            } => {
                o.str("workload", workload)
                    .u64("micros", *micros)
                    .f64("cost", *cost);
            }
            Event::Measurement {
                workload,
                micros,
                ok,
            } => {
                o.str("workload", workload)
                    .u64("micros", *micros)
                    .bool("ok", *ok);
            }
            Event::Fault {
                kind,
                workload,
                reason,
            } => {
                o.str("kind", kind)
                    .str("workload", workload)
                    .str("reason", reason);
            }
            Event::Elimination {
                config,
                kind,
                after_blocks,
                reason,
            } => {
                o.str("config", config)
                    .str("kind", kind)
                    .u64("after_blocks", *after_blocks as u64)
                    .str("reason", reason);
            }
            Event::StaticEliminated {
                config,
                iteration,
                lower_bound,
                incumbent_cost,
            } => {
                o.str("config", config)
                    .u64("iteration", *iteration as u64)
                    .f64("lower_bound", *lower_bound)
                    .f64("incumbent_cost", *incumbent_cost);
            }
            Event::Quarantine { instance, reason } => {
                o.str("instance", instance).str("reason", reason);
            }
            Event::Checkpoint { iteration, path } => {
                o.u64("iteration", *iteration as u64).str("path", path);
            }
            Event::CampaignEnd {
                best_cost,
                evals,
                retries,
                failed_configs,
                pruned,
                aborted,
                micros,
            } => {
                o.f64("best_cost", *best_cost)
                    .u64("evals", *evals as u64)
                    .u64("retries", *retries as u64)
                    .u64("failed_configs", *failed_configs as u64)
                    .u64("pruned", *pruned as u64)
                    .bool("aborted", *aborted)
                    .u64("micros", *micros);
            }
            Event::WorkerSpawned { worker, pid } => {
                o.u64("worker", *worker as u64).u64("pid", *pid);
            }
            Event::WorkerFailed { worker, reason } => {
                o.u64("worker", *worker as u64).str("reason", reason);
            }
            Event::WorkerQuarantined { worker, failures } => {
                o.u64("worker", *worker as u64).u64("failures", *failures);
            }
            Event::CounterFinal { name, value } => {
                o.str("name", name).u64("value", *value);
            }
            Event::GaugeFinal { name, value } => {
                o.str("name", name).u64("value", *value);
            }
            Event::HistogramFinal {
                name,
                count,
                sum,
                p50,
                p90,
                p99,
                max,
            } => {
                o.str("name", name)
                    .u64("count", *count)
                    .u64("sum", *sum)
                    .u64("p50", *p50)
                    .u64("p90", *p90)
                    .u64("p99", *p99)
                    .u64("max", *max);
            }
        }
        o.finish()
    }

    /// Parses one JSONL line back into an entry. Unknown keys are
    /// ignored; unknown `ev` values are an error.
    pub fn parse(line: &str) -> Result<JournalEntry, JournalError> {
        let f = Fields(parse_object(line).map_err(JournalError::Json)?);
        let t_us = f.u64("t")?;
        let ev = f.str("ev")?;
        let event = match ev.as_str() {
            "campaign_start" => Event::CampaignStart {
                seed: f.u64("seed")?,
                budget: f.usize("budget")?,
                n_instances: f.usize("n_instances")?,
                n_params: f.usize("n_params")?,
            },
            "campaign_config" => Event::CampaignConfig {
                core: f.str("core")?,
                scale: f.u64("scale")?,
                faults: f.str("faults")?,
                fault_seed: f.u64("fault_seed")?,
                timeout_ms: f.u64("timeout_ms")?,
                threads: f.usize("threads")?,
                // Added after journals without it were recorded: absent
                // means the segment predates distributed evaluation.
                workers: f.usize_or("workers", 0)?,
                max_iterations: f.u64("max_iterations")?,
                // Absent means the segment predates static bounds.
                static_bounds: f.bool_or("static_bounds", false)?,
            },
            "frozen" => Event::Frozen {
                param: f.str("param")?,
                code: f.str("code")?,
            },
            "resume" => Event::Resume {
                next_iteration: f.usize("next_iteration")?,
                budget_remaining: f.usize("budget_remaining")?,
            },
            "iteration_start" => Event::IterationStart {
                iteration: f.usize("iteration")?,
                configs: f.usize("configs")?,
            },
            "iteration_end" => Event::IterationEnd {
                iteration: f.usize("iteration")?,
                survivors: f.usize("survivors")?,
                best_cost: f.f64("best_cost")?,
                evals: f.usize("evals")?,
                blocks: f.usize("blocks")?,
                micros: f.u64("micros")?,
            },
            "evaluation" => Event::Evaluation {
                workload: f.str("workload")?,
                micros: f.u64("micros")?,
                cost: f.f64("cost")?,
            },
            "measurement" => Event::Measurement {
                workload: f.str("workload")?,
                micros: f.u64("micros")?,
                ok: f.bool("ok")?,
            },
            "fault" => Event::Fault {
                kind: f.str("kind")?,
                workload: f.str("workload")?,
                reason: f.str("reason")?,
            },
            "elimination" => Event::Elimination {
                config: f.str("config")?,
                kind: f.str("kind")?,
                after_blocks: f.usize("after_blocks")?,
                reason: f.str("reason")?,
            },
            "static_eliminated" => Event::StaticEliminated {
                config: f.str("config")?,
                iteration: f.usize("iteration")?,
                lower_bound: f.f64("lower_bound")?,
                incumbent_cost: f.f64("incumbent_cost")?,
            },
            "quarantine" => Event::Quarantine {
                instance: f.str("instance")?,
                reason: f.str("reason")?,
            },
            "checkpoint" => Event::Checkpoint {
                iteration: f.usize("iteration")?,
                path: f.str("path")?,
            },
            "campaign_end" => Event::CampaignEnd {
                best_cost: f.f64("best_cost")?,
                evals: f.usize("evals")?,
                retries: f.usize("retries")?,
                failed_configs: f.usize("failed_configs")?,
                pruned: f.usize("pruned")?,
                aborted: f.bool("aborted")?,
                micros: f.u64("micros")?,
            },
            "worker_spawned" => Event::WorkerSpawned {
                worker: f.usize("worker")?,
                pid: f.u64("pid")?,
            },
            "worker_failed" => Event::WorkerFailed {
                worker: f.usize("worker")?,
                reason: f.str("reason")?,
            },
            "worker_quarantined" => Event::WorkerQuarantined {
                worker: f.usize("worker")?,
                failures: f.u64("failures")?,
            },
            "counter" => Event::CounterFinal {
                name: f.str("name")?,
                value: f.u64("value")?,
            },
            "gauge" => Event::GaugeFinal {
                name: f.str("name")?,
                value: f.u64("value")?,
            },
            "histogram" => Event::HistogramFinal {
                name: f.str("name")?,
                count: f.u64("count")?,
                sum: f.u64("sum")?,
                p50: f.u64("p50")?,
                p90: f.u64("p90")?,
                p99: f.u64("p99")?,
                max: f.u64("max")?,
            },
            other => return Err(JournalError::UnknownEvent(other.to_string())),
        };
        Ok(JournalEntry { t_us, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: Event) {
        let entry = JournalEntry {
            t_us: 1234,
            event: e,
        };
        let line = entry.render();
        let back = JournalEntry::parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
        // Compare rendered forms so NaN-carrying events still round-trip.
        assert_eq!(back.render(), line);
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Event::CampaignStart {
            seed: 42,
            budget: 600,
            n_instances: 7,
            n_params: 5,
        });
        roundtrip(Event::CampaignConfig {
            core: "a53".to_string(),
            scale: 32768,
            faults: "transient".to_string(),
            fault_seed: 7,
            timeout_ms: 0,
            threads: 8,
            workers: 2,
            max_iterations: 1,
            static_bounds: true,
        });
        roundtrip(Event::Frozen {
            param: "l2_hash".to_string(),
            code: "C0".to_string(),
        });
        roundtrip(Event::Resume {
            next_iteration: 3,
            budget_remaining: 120,
        });
        roundtrip(Event::IterationStart {
            iteration: 1,
            configs: 12,
        });
        roundtrip(Event::IterationEnd {
            iteration: 1,
            survivors: 4,
            best_cost: 0.0831,
            evals: 60,
            blocks: 5,
            micros: 98_123,
        });
        roundtrip(Event::Evaluation {
            workload: "stream_copy \"q\"".to_string(),
            micros: 812,
            cost: f64::NAN,
        });
        roundtrip(Event::Measurement {
            workload: "ptr_chase".to_string(),
            micros: 55,
            ok: false,
        });
        roundtrip(Event::Fault {
            kind: "transient".to_string(),
            workload: "dep_chain".to_string(),
            reason: "injected transient fault (attempt 2)".to_string(),
        });
        roundtrip(Event::Elimination {
            config: "width=2 rob=32".to_string(),
            kind: "statistical".to_string(),
            after_blocks: 3,
            reason: "friedman p<0.05".to_string(),
        });
        roundtrip(Event::StaticEliminated {
            config: "C1.I3.F0".to_string(),
            iteration: 2,
            lower_bound: 41.25,
            incumbent_cost: 3.125,
        });
        roundtrip(Event::Quarantine {
            instance: "branch_mix".to_string(),
            reason: "dropped on every attempt".to_string(),
        });
        roundtrip(Event::Checkpoint {
            iteration: 2,
            path: "/tmp/run.ckpt".to_string(),
        });
        roundtrip(Event::CampaignEnd {
            best_cost: f64::INFINITY,
            evals: 600,
            retries: 4,
            failed_configs: 1,
            pruned: 2,
            aborted: true,
            micros: 1_234_567,
        });
        roundtrip(Event::CounterFinal {
            name: "cache.hits".to_string(),
            value: u64::MAX,
        });
        roundtrip(Event::GaugeFinal {
            name: "tuner.budget_remaining".to_string(),
            value: 0,
        });
        roundtrip(Event::WorkerSpawned {
            worker: 1,
            pid: 48_213,
        });
        roundtrip(Event::WorkerFailed {
            worker: 0,
            reason: "torn frame: unexpected EOF".to_string(),
        });
        roundtrip(Event::WorkerQuarantined {
            worker: 3,
            failures: 4,
        });
        roundtrip(Event::HistogramFinal {
            name: "sim.run_us".to_string(),
            count: 100,
            sum: 5000,
            p50: 63,
            p90: 127,
            p99: 255,
            max: 201,
        });
    }

    #[test]
    fn campaign_config_without_workers_parses_as_zero() {
        // The exact shape journals recorded before distributed support.
        let line = r#"{"t":9,"ev":"campaign_config","core":"a53","scale":32768,"faults":"none","fault_seed":0,"timeout_ms":0,"threads":4,"max_iterations":0}"#;
        let e = JournalEntry::parse(line).expect("old journals stay parseable");
        match e.event {
            Event::CampaignConfig {
                workers,
                threads,
                static_bounds,
                ..
            } => {
                assert_eq!(workers, 0);
                assert_eq!(threads, 4);
                assert!(!static_bounds, "pre-bounds journals default to off");
            }
            other => panic!("wrong event {other:?}"),
        }
        // A present static_bounds key of the wrong type is an error.
        let bad = r#"{"t":9,"ev":"campaign_config","core":"a53","scale":1,"faults":"none","fault_seed":0,"timeout_ms":0,"threads":1,"max_iterations":0,"static_bounds":1}"#;
        assert!(matches!(
            JournalEntry::parse(bad),
            Err(JournalError::Field(_))
        ));
        // But a present key of the wrong type is still an error.
        let bad = r#"{"t":9,"ev":"campaign_config","core":"a53","scale":1,"faults":"none","fault_seed":0,"timeout_ms":0,"threads":1,"workers":"two","max_iterations":0}"#;
        assert!(matches!(
            JournalEntry::parse(bad),
            Err(JournalError::Field(_))
        ));
    }

    #[test]
    fn unknown_extra_keys_are_ignored() {
        let line = r#"{"t":5,"ev":"quarantine","instance":"x","reason":"r","future_field":1}"#;
        let e = JournalEntry::parse(line).expect("forward-compatible parse");
        assert_eq!(
            e.event,
            Event::Quarantine {
                instance: "x".to_string(),
                reason: "r".to_string()
            }
        );
    }

    #[test]
    fn bad_lines_are_rejected_with_reasons() {
        assert!(matches!(
            JournalEntry::parse("not json"),
            Err(JournalError::Json(_))
        ));
        assert!(matches!(
            JournalEntry::parse(r#"{"t":1,"ev":"warp_drive"}"#),
            Err(JournalError::UnknownEvent(_))
        ));
        assert!(matches!(
            JournalEntry::parse(r#"{"t":1,"ev":"checkpoint","iteration":2}"#),
            Err(JournalError::Field(_))
        ));
        assert!(matches!(
            JournalEntry::parse(r#"{"ev":"resume","next_iteration":1,"budget_remaining":2}"#),
            Err(JournalError::Field(_))
        ));
    }
}
