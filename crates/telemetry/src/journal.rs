//! Buffered JSONL sinks and journal readers.
//!
//! Events are rendered to lines immediately (so they capture state at
//! emit time) but buffered in memory and written out in batches — one
//! `write_all` per flush instead of one syscall per event. I/O errors
//! are counted and swallowed: telemetry must never kill a campaign.

use crate::event::{JournalEntry, JournalError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// How many buffered lines trigger an automatic flush.
pub(crate) const FLUSH_EVERY: usize = 256;

/// Where flushed journal lines go.
pub(crate) enum Sink {
    /// Append to a file through a [`BufWriter`].
    File(BufWriter<File>),
    /// Keep everything in memory (tests, `racesim report` self-checks).
    Memory(Vec<String>),
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sink::File(_) => f.write_str("Sink::File"),
            Sink::Memory(lines) => write!(f, "Sink::Memory({} lines)", lines.len()),
        }
    }
}

/// A ring of pending lines in front of a [`Sink`].
#[derive(Debug)]
pub(crate) struct Buffered {
    buf: Vec<String>,
    sink: Sink,
    io_errors: u64,
}

impl Buffered {
    pub(crate) fn memory() -> Buffered {
        Buffered {
            buf: Vec::with_capacity(FLUSH_EVERY),
            sink: Sink::Memory(Vec::new()),
            io_errors: 0,
        }
    }

    /// Opens `path` for journal output. `append` keeps any existing
    /// journal (resume); otherwise the file is truncated.
    pub(crate) fn file(path: &Path, append: bool) -> std::io::Result<Buffered> {
        let file = OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(path)?;
        Ok(Buffered {
            buf: Vec::with_capacity(FLUSH_EVERY),
            sink: Sink::File(BufWriter::new(file)),
            io_errors: 0,
        })
    }

    pub(crate) fn push(&mut self, line: String) {
        self.buf.push(line);
        if self.buf.len() >= FLUSH_EVERY {
            self.flush();
        }
    }

    pub(crate) fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        match &mut self.sink {
            Sink::Memory(lines) => lines.append(&mut self.buf),
            Sink::File(w) => {
                let mut batch = String::new();
                for line in self.buf.drain(..) {
                    batch.push_str(&line);
                    batch.push('\n');
                }
                if w.write_all(batch.as_bytes()).is_err() || w.flush().is_err() {
                    self.io_errors += 1;
                }
            }
        }
    }

    /// Lines flushed to a memory sink plus any still pending.
    pub(crate) fn lines(&self) -> Vec<String> {
        let mut out = match &self.sink {
            Sink::Memory(lines) => lines.clone(),
            Sink::File(_) => Vec::new(),
        };
        out.extend(self.buf.iter().cloned());
        out
    }

    pub(crate) fn io_errors(&self) -> u64 {
        self.io_errors
    }
}

impl Drop for Buffered {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A parsed journal: its entries plus one `(line number, error)` pair
/// per unparseable line.
pub type ParsedJournal = (Vec<JournalEntry>, Vec<(usize, JournalError)>);

/// Parses a whole journal (one JSON object per line; blank lines are
/// skipped). Returns the entries plus one error per unparseable line,
/// so a journal truncated by a crash still yields its good prefix.
pub fn parse_journal(text: &str) -> ParsedJournal {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse(line) {
            Ok(e) => entries.push(e),
            Err(e) => errors.push((idx + 1, e)),
        }
    }
    (entries, errors)
}

/// Reads and parses a journal file.
pub fn read_journal(path: &PathBuf) -> std::io::Result<ParsedJournal> {
    Ok(parse_journal(&std::fs::read_to_string(path)?))
}

/// One unparseable journal line, classified for reporting.
///
/// A malformed **final** line is the expected signature of a writer that
/// was killed mid-`write` (`torn_tail`); readers should warn softly and
/// keep the valid prefix. A bad line anywhere else — or an unknown event
/// on the last line — means genuine corruption or a version mismatch and
/// deserves a louder warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalWarning {
    /// 1-based line number.
    pub line: usize,
    /// Why the line failed to parse.
    pub error: JournalError,
    /// True when this is a torn final line (crashed writer), as opposed
    /// to mid-file corruption.
    pub torn_tail: bool,
}

impl std::fmt::Display for JournalWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.torn_tail {
            write!(
                f,
                "line {}: torn final line (writer crashed mid-write?): {}",
                self.line, self.error
            )
        } else {
            write!(f, "line {}: {}", self.line, self.error)
        }
    }
}

/// A parsed journal with classified warnings instead of raw errors.
pub type LossyJournal = (Vec<JournalEntry>, Vec<JournalWarning>);

/// Like [`parse_journal`], but classifies each unparseable line: a JSON
/// error on the final non-empty line is a *torn tail* (a crash mid-write
/// truncated it), anything else is corruption. Parsing never aborts —
/// the valid prefix (and any valid lines after a bad one) always comes
/// back.
pub fn parse_journal_lossy(text: &str) -> LossyJournal {
    let last_line = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i + 1)
        .last();
    let (entries, errors) = parse_journal(text);
    let warnings = errors
        .into_iter()
        .map(|(line, error)| {
            let torn_tail = Some(line) == last_line && matches!(error, JournalError::Json(_));
            JournalWarning {
                line,
                error,
                torn_tail,
            }
        })
        .collect();
    (entries, warnings)
}

/// Reads and parses a journal file with classified warnings.
pub fn read_journal_lossy(path: &PathBuf) -> std::io::Result<LossyJournal> {
    Ok(parse_journal_lossy(&std::fs::read_to_string(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn entry(t: u64) -> JournalEntry {
        JournalEntry {
            t_us: t,
            event: Event::IterationStart {
                iteration: t as usize,
                configs: 8,
            },
        }
    }

    #[test]
    fn memory_sink_preserves_order_across_flushes() {
        let mut b = Buffered::memory();
        for t in 0..(FLUSH_EVERY as u64 * 2 + 3) {
            b.push(entry(t).render());
        }
        let lines = b.lines();
        assert_eq!(lines.len(), FLUSH_EVERY * 2 + 3);
        let (entries, errors) = parse_journal(&lines.join("\n"));
        assert!(errors.is_empty());
        assert_eq!(entries.len(), lines.len());
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.t_us, i as u64);
        }
    }

    #[test]
    fn file_sink_roundtrips_and_append_preserves() {
        let path = std::env::temp_dir().join(format!(
            "racesim_telemetry_{}_file_sink.jsonl",
            std::process::id()
        ));
        {
            let mut b = Buffered::file(&path, false).unwrap();
            b.push(entry(1).render());
            // Drop flushes the pending line.
        }
        {
            let mut b = Buffered::file(&path, true).unwrap();
            b.push(entry(2).render());
            b.flush();
            assert_eq!(b.io_errors(), 0);
        }
        let (entries, errors) = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 2, "append must not truncate");
        assert_eq!(entries[0].t_us, 1);
        assert_eq!(entries[1].t_us, 2);
    }

    #[test]
    fn truncating_open_discards_old_journal() {
        let path = std::env::temp_dir().join(format!(
            "racesim_telemetry_{}_truncate.jsonl",
            std::process::id()
        ));
        {
            let mut b = Buffered::file(&path, false).unwrap();
            b.push(entry(1).render());
        }
        {
            let mut b = Buffered::file(&path, false).unwrap();
            b.push(entry(9).render());
        }
        let (entries, _) = read_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].t_us, 9);
    }

    #[test]
    fn parse_journal_survives_a_torn_tail() {
        let good = entry(1).render();
        let text = format!("{good}\n\n{{\"t\":2,\"ev\":\"iteration_st");
        let (entries, errors) = parse_journal(&text);
        assert_eq!(entries.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 3, "line numbers are 1-based");
    }

    #[test]
    fn lossy_parse_classifies_a_torn_tail() {
        let good = entry(1).render();
        let text = format!("{good}\n{{\"t\":2,\"ev\":\"iteration_st");
        let (entries, warnings) = parse_journal_lossy(&text);
        assert_eq!(entries.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].torn_tail, "final malformed line is a tear");
        assert!(warnings[0].to_string().contains("torn final line"));
    }

    #[test]
    fn lossy_parse_flags_mid_file_garbage_as_corruption() {
        let good = entry(1).render();
        let also_good = entry(2).render();
        // Garbage in the middle, then a valid line: not a torn tail, and
        // the valid suffix is still kept.
        let text = format!("{good}\ngarbage not json\n{also_good}");
        let (entries, warnings) = parse_journal_lossy(&text);
        assert_eq!(entries.len(), 2, "valid lines around the bad one survive");
        assert_eq!(warnings.len(), 1);
        assert!(!warnings[0].torn_tail);

        // An unknown event on the final line is a version mismatch, not
        // a tear.
        let text = format!("{good}\n{{\"t\":3,\"ev\":\"warp_drive\"}}");
        let (_, warnings) = parse_journal_lossy(&text);
        assert_eq!(warnings.len(), 1);
        assert!(!warnings[0].torn_tail);
    }
}
