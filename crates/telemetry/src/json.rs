//! Minimal hand-rolled JSON: a writer for the journal's flat objects and
//! a parser for the same shape. The workspace's vendored `serde` is a
//! no-op shim, so — like the checkpoint format — serialization is
//! hand-rolled against exactly the subset the journal emits: one object
//! per line whose values are strings, numbers or booleans.
//!
//! The module is public so sibling crates with the same flat-object needs
//! (the distributed wire protocol, the CLI's JSON output) share one codec
//! instead of each hand-rolling a divergent one.

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON value. Finite values use Rust's shortest
/// round-trip decimal rendering; non-finite values (invalid JSON numbers)
/// are encoded as the strings `"NaN"`, `"inf"` and `"-inf"`.
pub fn f64_value(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v == f64::INFINITY {
        "\"inf\"".to_string()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".to_string()
    } else {
        format!("{v}")
    }
}

/// An incremental writer for one flat JSON object.
#[derive(Debug)]
pub struct Obj {
    buf: String,
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Appends a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Obj {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned-integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Obj {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Appends a float field (non-finite values as marker strings).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Obj {
        self.key(k);
        self.buf.push_str(&f64_value(v));
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// One parsed JSON scalar. Numbers keep their raw token so integer fields
/// can be parsed exactly (no round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A string value.
    Str(String),
    /// A numeric value, as its raw token.
    Num(String),
    /// A boolean value.
    Bool(bool),
}

/// Parses one flat JSON object (`{"k": v, ...}` where every `v` is a
/// string, number or boolean) into key/value pairs.
///
/// # Errors
///
/// Reports the first malformed construct with its byte offset.
pub fn parse_object(s: &str) -> Result<Vec<(String, Scalar)>, String> {
    let b = s.trim().as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let fail = |what: &str, at: usize| format!("{what} at byte {at}");

    let skip_ws = |b: &[u8], mut i: usize| {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    };

    fn parse_string(b: &[u8], mut i: usize) -> Result<(String, usize), String> {
        debug_assert_eq!(b[i], b'"');
        i += 1;
        let mut out = String::new();
        while i < b.len() {
            match b[i] {
                b'"' => return Ok((out, i + 1)),
                b'\\' => {
                    i += 1;
                    if i >= b.len() {
                        return Err("dangling escape".to_string());
                    }
                    match b[i] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if i + 4 >= b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&b[i + 1..i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                            i += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                    i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = i;
                    while i < b.len() && b[i] != b'"' && b[i] != b'\\' {
                        i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..i])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
            }
        }
        Err("unterminated string".to_string())
    }

    i = skip_ws(b, i);
    if i >= b.len() || b[i] != b'{' {
        return Err(fail("expected '{'", i));
    }
    i = skip_ws(b, i + 1);
    if i < b.len() && b[i] == b'}' {
        return Ok(out);
    }
    loop {
        i = skip_ws(b, i);
        if i >= b.len() || b[i] != b'"' {
            return Err(fail("expected key string", i));
        }
        let (key, next) = parse_string(b, i)?;
        i = skip_ws(b, next);
        if i >= b.len() || b[i] != b':' {
            return Err(fail("expected ':'", i));
        }
        i = skip_ws(b, i + 1);
        if i >= b.len() {
            return Err(fail("expected value", i));
        }
        let value = match b[i] {
            b'"' => {
                let (v, next) = parse_string(b, i)?;
                i = next;
                Scalar::Str(v)
            }
            b't' if b[i..].starts_with(b"true") => {
                i += 4;
                Scalar::Bool(true)
            }
            b'f' if b[i..].starts_with(b"false") => {
                i += 5;
                Scalar::Bool(false)
            }
            b'-' | b'+' | b'0'..=b'9' => {
                let start = i;
                while i < b.len() && matches!(b[i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                {
                    i += 1;
                }
                Scalar::Num(
                    std::str::from_utf8(&b[start..i])
                        .expect("ASCII number token")
                        .to_string(),
                )
            }
            _ => return Err(fail("unsupported value", i)),
        };
        out.push((key, value));
        i = skip_ws(b, i);
        if i >= b.len() {
            return Err(fail("unterminated object", i));
        }
        match b[i] {
            b',' => i += 1,
            b'}' => {
                let rest = skip_ws(b, i + 1);
                if rest != b.len() {
                    return Err(fail("trailing content", rest));
                }
                return Ok(out);
            }
            _ => return Err(fail("expected ',' or '}'", i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_recovers() {
        let mut o = Obj::new();
        o.str("name", "quote \" slash \\ nl \n tab \t bell \u{7}");
        o.u64("n", u64::MAX);
        o.f64("x", 0.1);
        o.bool("ok", true);
        let line = o.finish();
        let kv = parse_object(&line).expect("parses");
        assert_eq!(kv.len(), 4);
        assert_eq!(
            kv[0].1,
            Scalar::Str("quote \" slash \\ nl \n tab \t bell \u{7}".to_string())
        );
        assert_eq!(kv[1].1, Scalar::Num(u64::MAX.to_string()));
        assert_eq!(kv[2].1, Scalar::Num("0.1".to_string()));
        assert_eq!(kv[3].1, Scalar::Bool(true));
    }

    #[test]
    fn non_finite_floats_become_marker_strings() {
        assert_eq!(f64_value(f64::NAN), "\"NaN\"");
        assert_eq!(f64_value(f64::INFINITY), "\"inf\"");
        assert_eq!(f64_value(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(f64_value(-0.0), "-0");
    }

    #[test]
    fn malformed_objects_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":[1]}",
            "{\"a\":1} trailing",
            "{\"a\":\"unterminated}",
        ] {
            assert!(parse_object(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse_object("{}").unwrap(), Vec::new());
        assert_eq!(parse_object("  { }  ").unwrap(), Vec::new());
    }
}
