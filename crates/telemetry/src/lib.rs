//! Low-overhead metrics and a structured campaign journal for racing runs.
//!
//! The paper's methodology is an iterative race → inspect → fix loop;
//! this crate makes the "inspect" step possible without slowing the
//! race. It has two halves sharing one [`Telemetry`] handle:
//!
//! * a **metrics registry** — atomic [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (p50/p90/p99), resolved once at
//!   registration so hot paths pay one relaxed atomic op — and
//! * an **event journal** — typed [`Event`]s with monotonic
//!   timestamps, buffered in memory and flushed as JSONL lines
//!   (hand-rolled serialization, like the checkpoint format; the
//!   vendored `serde` is a no-op shim).
//!
//! A third piece, the [`Profiler`], lives beside the `Telemetry` handle
//! rather than inside it: a hierarchical span-based self-profiler with
//! the same true-no-op disabled path, used by `racesim profile` and the
//! perf-snapshot harness to attribute campaign wall time to simulator
//! phases.
//!
//! The default handle is *disabled*: every operation is a branch on a
//! `None` and nothing allocates, so instrumentation can stay in place
//! permanently. `Telemetry` is `Clone + Send + Sync`; clones share the
//! same registry and sink, so the tuner, simulator workers and boards
//! can all write through their own copies.
//!
//! ```
//! use racesim_telemetry::{Event, Telemetry};
//!
//! let t = Telemetry::in_memory();
//! let evals = t.counter("tuner.evals");
//! evals.inc();
//! t.emit(Event::Quarantine {
//!     instance: "ptr_chase".to_string(),
//!     reason: "dropped on every attempt".to_string(),
//! });
//! t.emit_metrics();
//! assert_eq!(t.lines().len(), 2);
//!
//! let off = Telemetry::disabled();
//! off.counter("tuner.evals").inc(); // no-op, no allocation
//! assert!(!off.is_enabled());
//! ```
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod journal;
pub mod json;
mod metrics;
mod profiler;

pub use event::{Event, JournalEntry, JournalError};
pub use journal::{
    parse_journal, parse_journal_lossy, read_journal, read_journal_lossy, JournalWarning,
    LossyJournal, ParsedJournal,
};
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot};
pub use profiler::{PhaseNode, PhaseTimer, ProfileSnapshot, Profiler, Span};

use journal::Buffered;
use metrics::Registry;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Shared state behind an enabled handle.
#[derive(Debug)]
struct Inner {
    /// All timestamps are microseconds since this instant.
    epoch: Instant,
    registry: Registry,
    sink: Mutex<Buffered>,
}

/// A cloneable telemetry handle: either enabled (shared registry +
/// journal sink) or disabled (every operation a no-op).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle. All metric handles it returns are dead and
    /// [`Telemetry::emit`] does nothing — no clock reads, no allocation.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle journaling to an in-memory sink (tests).
    pub fn in_memory() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Registry::default(),
                sink: Mutex::new(Buffered::memory()),
            })),
        }
    }

    /// An enabled handle journaling to `path` as JSONL. With `append`
    /// an existing journal is preserved (checkpoint resume); otherwise
    /// the file is truncated.
    pub fn to_file(path: &Path, append: bool) -> std::io::Result<Telemetry> {
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: Registry::default(),
                sink: Mutex::new(Buffered::file(path, append)?),
            })),
        })
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle was created (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Registers (or finds) the counter `name`. Disabled handles return
    /// a dead counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.registry.counter(name)))
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.registry.gauge(name)))
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| i.registry.histogram(name)))
    }

    /// Starts a stopwatch. Disabled handles never read the clock.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Appends `event` to the journal, stamped with the current
    /// monotonic offset. No-op when disabled.
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let entry = JournalEntry {
                t_us: inner.epoch.elapsed().as_micros() as u64,
                event,
            };
            inner.sink.lock().push(entry.render());
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map_or_else(MetricsSnapshot::default, |i| i.registry.snapshot())
    }

    /// Journals the final value of every registered metric as
    /// `counter` / `gauge` / `histogram` events, then flushes.
    pub fn emit_metrics(&self) {
        if !self.is_enabled() {
            return;
        }
        let snap = self.snapshot();
        for (name, value) in snap.counters {
            self.emit(Event::CounterFinal { name, value });
        }
        for (name, value) in snap.gauges {
            self.emit(Event::GaugeFinal { name, value });
        }
        for (name, h) in snap.histograms {
            self.emit(Event::HistogramFinal {
                name,
                count: h.count,
                sum: h.sum,
                p50: h.p50,
                p90: h.p90,
                p99: h.p99,
                max: h.max,
            });
        }
        self.flush();
    }

    /// Forces buffered journal lines out to the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.lock().flush();
        }
    }

    /// Journal lines recorded so far (memory sinks only; a file-backed
    /// handle returns only unflushed lines — read the file instead).
    pub fn lines(&self) -> Vec<String> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.sink.lock().lines())
    }

    /// Number of sink write failures swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sink.lock().io_errors())
    }
}

/// A wall-clock stopwatch that reads the clock only when telemetry is
/// enabled; [`Stopwatch::elapsed_us`] returns 0 otherwise.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Microseconds since the stopwatch started (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.0.map_or(0, |t0| t0.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").add(5);
        t.gauge("g").set(5);
        t.histogram("h").record(5);
        t.emit(Event::IterationStart {
            iteration: 1,
            configs: 2,
        });
        t.emit_metrics();
        t.flush();
        assert_eq!(t.now_us(), 0);
        assert_eq!(t.stopwatch().elapsed_us(), 0);
        assert_eq!(t.lines(), Vec::<String>::new());
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn clones_share_registry_and_sink() {
        let a = Telemetry::in_memory();
        let b = a.clone();
        a.counter("tuner.evals").add(2);
        b.counter("tuner.evals").add(3);
        assert_eq!(a.snapshot().counter("tuner.evals"), Some(5));
        b.emit(Event::IterationStart {
            iteration: 1,
            configs: 4,
        });
        assert_eq!(a.lines().len(), 1);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let t = Telemetry::in_memory();
        for i in 0..20 {
            t.emit(Event::IterationStart {
                iteration: i,
                configs: 1,
            });
        }
        let lines = t.lines();
        let (entries, errors) = parse_journal(&lines.join("\n"));
        assert!(errors.is_empty());
        let stamps: Vec<u64> = entries.iter().map(|e| e.t_us).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted);
    }

    #[test]
    fn emit_metrics_journals_every_kind() {
        let t = Telemetry::in_memory();
        t.counter("c").add(7);
        t.gauge("g").set(9);
        t.histogram("h").record(100);
        t.emit_metrics();
        let (entries, errors) = parse_journal(&t.lines().join("\n"));
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 3);
        assert!(matches!(
            &entries[0].event,
            Event::CounterFinal { name, value: 7 } if name == "c"
        ));
        assert!(matches!(
            &entries[1].event,
            Event::GaugeFinal { name, value: 9 } if name == "g"
        ));
        assert!(matches!(
            &entries[2].event,
            Event::HistogramFinal { name, count: 1, sum: 100, max: 100, .. } if name == "h"
        ));
    }

    #[test]
    fn sending_across_threads_works() {
        let t = Telemetry::in_memory();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let c = t.counter("threaded");
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.snapshot().counter("threaded"), Some(4000));
    }
}
