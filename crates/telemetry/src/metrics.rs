//! Lock-free metric primitives: counters, gauges and log-bucketed
//! histograms, all backed by atomics and shared via `Arc`.
//!
//! Handles are resolved once — a [`Counter`] is either a live
//! `Arc<AtomicU64>` or `None` — so an instrumented hot path pays a single
//! relaxed atomic op when telemetry is on and a branch on a `None` when it
//! is off. Nothing allocates after registration.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; a disabled handle (from [`crate::Telemetry::disabled`]) is a
/// no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge. Cloning shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: `floor(log2(v))` for `v` in `[1, u64::MAX]`.
const BUCKETS: usize = 64;

/// Shared histogram storage: one bucket per power of two plus running
/// count / sum / max, all atomics.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        // Bucket k holds values in [2^k, 2^(k+1)); 0 lands in bucket 0.
        let idx = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (k, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of bucket k, clamped by the true max.
                    let hi = if k >= 63 {
                        u64::MAX
                    } else {
                        (1u64 << (k + 1)) - 1
                    };
                    return hi.min(max);
                }
            }
            max
        };
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
        }
    }
}

/// A log2-bucketed histogram of `u64` samples (typically microseconds).
/// Percentiles are bucket upper bounds — at most 2x off, which is plenty
/// for latency triage — clamped by the exact observed maximum.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Current aggregate view (all zeros for a disabled handle).
    pub fn snapshot(&self) -> HistSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistSnapshot::default, |h| h.snapshot())
    }
}

/// Point-in-time aggregates of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// 50th percentile (bucket upper bound, clamped by `max`).
    pub p50: u64,
    /// 90th percentile (bucket upper bound, clamped by `max`).
    pub p90: u64,
    /// 99th percentile (bucket upper bound, clamped by `max`).
    pub p99: u64,
}

impl HistSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Name → metric maps. BTreeMaps so snapshots iterate in a stable order.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    pub(crate) fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    pub(crate) fn histogram(&self, name: &str) -> Arc<HistCore> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCore::new())),
        )
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every registered metric, in name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → aggregates.
    pub histograms: Vec<(String, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_do_nothing() {
        let c = Counter::default();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(42);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.record(1000);
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    #[test]
    fn registry_shares_by_name() {
        let r = Registry::default();
        let a = Counter(Some(r.counter("x")));
        let b = Counter(Some(r.counter("x")));
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.snapshot().counter("x"), Some(7));
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let r = Registry::default();
        let h = Histogram(Some(r.histogram("lat")));
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 is 500; its bucket [256,512) caps at 511.
        assert!((500..=1023).contains(&s.p50), "p50={}", s.p50);
        assert!((900..=1023).contains(&s.p90), "p90={}", s.p90);
        assert!(s.p99 >= s.p90 && s.p90 >= s.p50);
        assert!(s.p99 <= s.max.max(1023));
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_zero_and_huge_samples() {
        let r = Registry::default();
        let h = Histogram(Some(r.histogram("edge")));
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket k holds [2^k, 2^(k+1)); the reported percentile is the
        // bucket's upper bound clamped by the observed max. Probe each
        // boundary pair (2^k − 1, 2^k) to pin the bucketing rule.
        for k in 1..63usize {
            let r = Registry::default();
            let h = Histogram(Some(r.histogram("b")));
            let below = (1u64 << k) - 1; // top of bucket k−1
            let at = 1u64 << k; // bottom of bucket k
            h.record(below);
            h.record(at);
            let s = h.snapshot();
            assert_eq!(s.count, 2);
            assert_eq!(s.max, at);
            // p50 = first sample = top of bucket k−1, which is exactly
            // `below`; p99 lands in bucket k, clamped to the max.
            assert_eq!(s.p50, below, "k={k}");
            assert_eq!(s.p99, at, "k={k}");
        }
    }

    #[test]
    fn histogram_single_sample_percentiles_collapse() {
        for v in [0u64, 1, 2, 1000, u64::MAX] {
            let r = Registry::default();
            let h = Histogram(Some(r.histogram("one")));
            h.record(v);
            let s = h.snapshot();
            assert_eq!(s.count, 1);
            assert_eq!(s.sum, v);
            assert_eq!(s.max, v);
            // With one sample every percentile is that sample (the
            // bucket bound is clamped by max).
            assert_eq!((s.p50, s.p90, s.p99), (v, v, v), "v={v}");
            assert_eq!(s.mean(), v as f64);
        }
    }

    #[test]
    fn histogram_zero_shares_bucket_with_one() {
        // 0 is clamped into bucket 0 alongside 1; percentiles for an
        // all-{0,1} population must stay ≤ 1.
        let r = Registry::default();
        let h = Histogram(Some(r.histogram("z")));
        for _ in 0..10 {
            h.record(0);
        }
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.count, 11);
        assert_eq!(s.sum, 1);
        assert_eq!(s.max, 1);
        assert_eq!((s.p50, s.p99), (1, 1));
    }

    #[test]
    fn histogram_top_bucket_holds_u64_max() {
        let r = Registry::default();
        let h = Histogram(Some(r.histogram("top")));
        h.record(u64::MAX); // bucket 63; upper bound must not overflow
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
        // Sum wraps are the caller's concern; count and max stay exact.
    }

    #[test]
    fn empty_histogram_mean_and_percentiles_are_zero() {
        let r = Registry::default();
        let h = Histogram(Some(r.histogram("empty")));
        let s = h.snapshot();
        assert_eq!(s, HistSnapshot::default());
        assert_eq!(s.mean(), 0.0);
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::default();
        r.counter("zeta");
        r.counter("alpha");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
