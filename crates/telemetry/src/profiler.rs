//! Hierarchical span-based self-profiler.
//!
//! Answers "where does a campaign's wall time go?" without slowing the
//! campaign down when nobody is asking. The design mirrors the metrics
//! registry: a [`Profiler`] handle is either enabled (an `Arc` to a
//! shared phase tree) or disabled (every operation a branch on `None`,
//! no clock reads, no allocation), so instrumentation stays in place
//! permanently.
//!
//! Phases are keyed by `&'static str` names and accumulate into a tree:
//! each node records an invocation count, total wall time, and optional
//! per-phase instruction / simulated-cycle attribution. Self time
//! (total minus children) is derived at snapshot time.
//!
//! Two instrumentation styles share the tree:
//!
//! * [`Span`] — RAII scope from [`Profiler::enter`]. Nesting is dynamic,
//!   via a thread-local stack: a span opened while another span on the
//!   same thread is live becomes its child. Right for coarse phases
//!   (tuner iterations, racing stages) where a few nanoseconds of
//!   bookkeeping do not matter. Spans must be dropped on the thread
//!   that opened them.
//! * [`PhaseTimer`] — a pre-resolved node handle for hot loops. The
//!   tree position is fixed at construction ([`Profiler::timer`] /
//!   [`PhaseTimer::child`]); recording is a couple of relaxed atomic
//!   adds with no lock and no thread-local access, so the simulator
//!   inner loop can feed chunked timings at full speed.
//!
//! ```
//! use racesim_telemetry::Profiler;
//!
//! let prof = Profiler::enabled();
//! {
//!     let _run = prof.enter("run");
//!     let fetch = prof.timer("run").child("fetch");
//!     fetch.record_ns(1_000);
//!     fetch.add_insts(64);
//! }
//! let snap = prof.snapshot();
//! assert_eq!(snap.roots[0].name, "run");
//! assert_eq!(snap.roots[0].children[0].insts, 64);
//!
//! let off = Profiler::disabled();
//! let _s = off.enter("run"); // no-op: no clock read, no allocation
//! ```

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-node accumulators. All relaxed atomics: phases are reported in
/// aggregate after the run, not read concurrently with precision.
#[derive(Debug, Default)]
struct NodeStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    insts: AtomicU64,
    cycles: AtomicU64,
}

impl NodeStats {
    #[inline]
    fn add(&self, count: u64, ns: u64) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// One node of the phase tree. Children are ordered by first
/// registration, which makes snapshots deterministic for a fixed
/// instrumentation order.
#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    stats: Arc<NodeStats>,
}

/// Shared tree behind an enabled profiler. Node creation takes the
/// lock; recording into an already-resolved node does not.
#[derive(Debug, Default)]
struct ProfCore {
    /// Index 0..: all nodes; `roots` indexes the parentless ones.
    nodes: Mutex<Tree>,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl ProfCore {
    /// Finds or creates the child `name` under `parent` (`None` = root).
    fn resolve(&self, parent: Option<usize>, name: &'static str) -> (usize, Arc<NodeStats>) {
        let mut tree = self.nodes.lock();
        let siblings: &[usize] = match parent {
            Some(p) => &tree.nodes[p].children,
            None => &tree.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&idx| tree.nodes[idx].name == name) {
            return (idx, Arc::clone(&tree.nodes[idx].stats));
        }
        let idx = tree.nodes.len();
        tree.nodes.push(Node {
            name,
            children: Vec::new(),
            stats: Arc::new(NodeStats::default()),
        });
        match parent {
            Some(p) => tree.nodes[p].children.push(idx),
            None => tree.roots.push(idx),
        }
        (idx, Arc::clone(&tree.nodes[idx].stats))
    }

    fn snapshot(&self) -> ProfileSnapshot {
        let tree = self.nodes.lock();
        fn build(tree: &Tree, idx: usize) -> PhaseNode {
            let node = &tree.nodes[idx];
            let children: Vec<PhaseNode> = node.children.iter().map(|&c| build(tree, c)).collect();
            let recorded_ns = node.stats.total_ns.load(Ordering::Relaxed);
            let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
            // Container phases (e.g. a "mem" grouping whose children do
            // all the recording) roll up to their children's total.
            let total_ns = recorded_ns.max(child_ns);
            PhaseNode {
                name: node.name.to_string(),
                count: node.stats.count.load(Ordering::Relaxed),
                total_ns,
                self_ns: total_ns.saturating_sub(child_ns),
                insts: node.stats.insts.load(Ordering::Relaxed),
                cycles: node.stats.cycles.load(Ordering::Relaxed),
                children,
            }
        }
        ProfileSnapshot {
            roots: tree.roots.iter().map(|&r| build(&tree, r)).collect(),
        }
    }
}

thread_local! {
    /// Stack of (profiler identity, node index) for dynamic Span
    /// nesting. Tagged with the owning `ProfCore`'s address so spans
    /// from distinct profilers on one thread do not adopt each other.
    static SPAN_STACK: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable profiler handle: either enabled (shared phase tree) or
/// disabled (every operation a no-op).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfCore>>,
}

impl Profiler {
    /// The no-op handle. Spans it returns never read the clock and
    /// timers it returns never touch memory.
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    /// An enabled handle with an empty phase tree.
    pub fn enabled() -> Profiler {
        Profiler {
            inner: Some(Arc::new(ProfCore::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name`, nested under the innermost live span
    /// on this thread (from this profiler), and starts its clock. The
    /// span records itself when dropped; drop it on this thread.
    pub fn enter(&self, name: &'static str) -> Span {
        let Some(core) = &self.inner else {
            return Span { inner: None };
        };
        let id = Arc::as_ptr(core) as usize;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .last()
                .filter(|(owner, _)| *owner == id)
                .map(|(_, node)| *node)
        });
        let (node, stats) = core.resolve(parent, name);
        SPAN_STACK.with(|s| s.borrow_mut().push((id, node)));
        Span {
            inner: Some(SpanInner {
                core: Arc::clone(core),
                node,
                stats,
                t0: Instant::now(),
            }),
        }
    }

    /// Resolves the root phase `name` into a [`PhaseTimer`]. Unlike
    /// [`Profiler::enter`], the position in the tree is fixed here, not
    /// by runtime nesting.
    pub fn timer(&self, name: &'static str) -> PhaseTimer {
        let Some(core) = &self.inner else {
            return PhaseTimer { inner: None };
        };
        let (node, stats) = core.resolve(None, name);
        PhaseTimer {
            inner: Some(TimerInner {
                core: Arc::clone(core),
                node,
                stats,
            }),
        }
    }

    /// A point-in-time copy of the phase tree (empty when disabled).
    pub fn snapshot(&self) -> ProfileSnapshot {
        self.inner
            .as_ref()
            .map_or_else(ProfileSnapshot::default, |c| c.snapshot())
    }
}

#[derive(Debug)]
struct SpanInner {
    core: Arc<ProfCore>,
    node: usize,
    stats: Arc<NodeStats>,
    t0: Instant,
}

/// An RAII phase scope from [`Profiler::enter`]. Dropping it adds the
/// elapsed wall time to its node and closes the nesting scope.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attributes `n` retired instructions to this span's phase.
    pub fn add_insts(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.stats.insts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Attributes `n` simulated cycles to this span's phase.
    pub fn add_cycles(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.stats.cycles.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            let ns = i.t0.elapsed().as_nanos() as u64;
            i.stats.add(1, ns);
            let id = Arc::as_ptr(&i.core) as usize;
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Out-of-order drops (a span outliving a later sibling)
                // still unwind correctly: remove this entry wherever it
                // sits rather than blindly popping.
                if let Some(pos) = stack.iter().rposition(|&e| e == (id, i.node)) {
                    stack.remove(pos);
                }
            });
        }
    }
}

#[derive(Debug, Clone)]
struct TimerInner {
    core: Arc<ProfCore>,
    node: usize,
    stats: Arc<NodeStats>,
}

/// A pre-resolved phase handle for hot loops: recording is lock-free
/// and does not consult the thread-local span stack. Cloning shares the
/// node. Obtained from [`Profiler::timer`] or [`PhaseTimer::child`].
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    inner: Option<TimerInner>,
}

impl PhaseTimer {
    /// Whether recording into this timer does anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (or creates) the child phase `name` under this timer.
    pub fn child(&self, name: &'static str) -> PhaseTimer {
        let Some(i) = &self.inner else {
            return PhaseTimer { inner: None };
        };
        let (node, stats) = i.core.resolve(Some(i.node), name);
        PhaseTimer {
            inner: Some(TimerInner {
                core: Arc::clone(&i.core),
                node,
                stats,
            }),
        }
    }

    /// Records one invocation lasting `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(i) = &self.inner {
            i.stats.add(1, ns);
        }
    }

    /// Records `count` invocations totalling `ns` nanoseconds.
    #[inline]
    pub fn add(&self, count: u64, ns: u64) {
        if let Some(i) = &self.inner {
            i.stats.add(count, ns);
        }
    }

    /// Attributes `n` retired instructions to this phase.
    #[inline]
    pub fn add_insts(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.stats.insts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Attributes `n` simulated cycles to this phase.
    #[inline]
    pub fn add_cycles(&self, n: u64) {
        if let Some(i) = &self.inner {
            i.stats.cycles.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Times a closure and records it as one invocation.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.inner {
            Some(i) => {
                let t0 = Instant::now();
                let out = f();
                i.stats.add(1, t0.elapsed().as_nanos() as u64);
                out
            }
            None => f(),
        }
    }
}

// PhaseTimer recording never touches the span stack, so sharing across
// worker threads is sound; the tree itself is Mutex + atomics.
// (Send/Sync derive automatically from the field types; these asserts
// keep that property from regressing silently.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhaseTimer>();
    assert_send_sync::<Profiler>();
};

/// One phase of a [`ProfileSnapshot`]: aggregates plus children.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseNode {
    /// Static phase name.
    pub name: String,
    /// Number of recorded invocations.
    pub count: u64,
    /// Total wall time, including children, in nanoseconds.
    pub total_ns: u64,
    /// Wall time not accounted to any child (total − Σ children).
    pub self_ns: u64,
    /// Retired instructions attributed to this phase.
    pub insts: u64,
    /// Simulated cycles attributed to this phase.
    pub cycles: u64,
    /// Child phases, in first-registration order.
    pub children: Vec<PhaseNode>,
}

/// A point-in-time copy of a profiler's phase tree, with renderers for
/// a text tree, stable JSON, and folded stacks (flamegraph input).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Top-level phases, in first-registration order.
    pub roots: Vec<PhaseNode>,
}

/// Renders nanoseconds with an adaptive unit, 3 significant-ish digits.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ProfileSnapshot {
    /// Sum of root-phase total times: the profiled wall time.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Looks up a phase by path from a root, e.g. `["simulate", "fetch"]`.
    pub fn find(&self, path: &[&str]) -> Option<&PhaseNode> {
        let mut nodes = &self.roots;
        let mut found = None;
        for name in path {
            found = nodes.iter().find(|n| n.name == *name)?.into();
            nodes = &found.as_ref().unwrap().children;
        }
        found
    }

    /// An indented text tree with per-phase share of the profiled total.
    pub fn render_text(&self) -> String {
        let total = self.total_ns().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} {:>9} {:>10} {:>10} {:>6} {:>12} {:>12}\n",
            "phase", "count", "total", "self", "%", "insts", "cycles"
        ));
        fn walk(out: &mut String, node: &PhaseNode, depth: usize, total: u64) {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let pct = 100.0 * node.total_ns as f64 / total as f64;
            out.push_str(&format!(
                "{:<38} {:>9} {:>10} {:>10} {:>5.1}% {:>12} {:>12}\n",
                label,
                node.count,
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
                pct,
                node.insts,
                node.cycles,
            ));
            for c in &node.children {
                walk(out, c, depth + 1, total);
            }
        }
        for r in &self.roots {
            walk(&mut out, r, 0, total);
        }
        out
    }

    /// A stable JSON document:
    /// `{"phases":[{"name","count","total_ns","self_ns","insts","cycles","children"},…]}`.
    /// Field set and order are a pinned interface (golden-tested).
    pub fn render_json(&self) -> String {
        fn node_json(out: &mut String, node: &PhaseNode) {
            out.push_str("{\"name\":\"");
            crate::json::escape_into(out, &node.name);
            out.push_str(&format!(
                "\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"insts\":{},\"cycles\":{},\"children\":[",
                node.count, node.total_ns, node.self_ns, node.insts, node.cycles
            ));
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node_json(out, c);
            }
            out.push_str("]}");
        }
        let mut out = String::from("{\"phases\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// Folded stacks ("root;child;leaf <self_ns>" per line), the input
    /// format of `flamegraph.pl` / `inferno-flamegraph`.
    pub fn render_folded(&self) -> String {
        fn walk(out: &mut String, prefix: &str, node: &PhaseNode) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            if node.self_ns > 0 || node.children.is_empty() {
                out.push_str(&format!("{path} {}\n", node.self_ns));
            }
            for c in &node.children {
                walk(out, &path, c);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(&mut out, "", r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        {
            let s = p.enter("run");
            s.add_insts(10);
            s.add_cycles(10);
        }
        let t = p.timer("run");
        assert!(!t.is_enabled());
        t.record_ns(100);
        t.add(5, 100);
        t.child("fetch").record_ns(1);
        assert_eq!(t.time(|| 42), 42);
        assert_eq!(p.snapshot(), ProfileSnapshot::default());
    }

    #[test]
    fn spans_nest_dynamically() {
        let p = Profiler::enabled();
        {
            let _outer = p.enter("tune");
            {
                let _inner = p.enter("iteration");
                let _leaf = p.enter("simulate");
            }
            let _again = p.enter("iteration");
        }
        let snap = p.snapshot();
        assert_eq!(snap.roots.len(), 1);
        let tune = &snap.roots[0];
        assert_eq!((tune.name.as_str(), tune.count), ("tune", 1));
        assert_eq!(tune.children.len(), 1);
        let iter = &tune.children[0];
        assert_eq!((iter.name.as_str(), iter.count), ("iteration", 2));
        assert_eq!(iter.children[0].name, "simulate");
        assert!(snap.find(&["tune", "iteration", "simulate"]).is_some());
        assert!(snap.find(&["tune", "simulate"]).is_none());
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let p = Profiler::enabled();
        {
            let _a = p.enter("a");
        }
        {
            let _b = p.enter("b");
        }
        assert_eq!(p.snapshot().roots.len(), 2);
    }

    #[test]
    fn out_of_order_span_drop_unwinds_cleanly() {
        let p = Profiler::enabled();
        let outer = p.enter("outer");
        let inner = p.enter("inner");
        drop(outer); // dropped before its child
        drop(inner);
        // A fresh span must still land at the root, not under a stale
        // stack entry.
        {
            let _c = p.enter("after");
        }
        let snap = p.snapshot();
        let names: Vec<&str> = snap.roots.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"after"), "roots: {names:?}");
    }

    #[test]
    fn two_profilers_on_one_thread_stay_separate() {
        let a = Profiler::enabled();
        let b = Profiler::enabled();
        let _sa = a.enter("a_root");
        {
            let _sb = b.enter("b_root");
        }
        drop(_sa);
        assert!(a.snapshot().find(&["a_root", "b_root"]).is_none());
        assert_eq!(b.snapshot().roots[0].name, "b_root");
    }

    #[test]
    fn timers_accumulate_and_share_nodes() {
        let p = Profiler::enabled();
        let sim = p.timer("simulate");
        let fetch = sim.child("fetch");
        let fetch2 = p.timer("simulate").child("fetch");
        fetch.add(10, 1_000);
        fetch2.record_ns(500);
        fetch.add_insts(640);
        fetch.add_cycles(1280);
        sim.record_ns(2_000);
        let snap = p.snapshot();
        let f = snap.find(&["simulate", "fetch"]).unwrap();
        assert_eq!((f.count, f.total_ns), (11, 1_500));
        assert_eq!((f.insts, f.cycles), (640, 1_280));
        let s = snap.find(&["simulate"]).unwrap();
        assert_eq!(s.total_ns, 2_000);
        assert_eq!(s.self_ns, 500); // 2000 − child 1500
    }

    #[test]
    fn self_time_saturates_when_children_exceed_parent() {
        let p = Profiler::enabled();
        let root = p.timer("r");
        root.record_ns(10);
        root.child("c").record_ns(100);
        assert_eq!(p.snapshot().roots[0].self_ns, 0);
    }

    #[test]
    fn timers_record_across_threads() {
        let p = Profiler::enabled();
        let t = p.timer("simulate").child("eval");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.add(1, 10);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let e = p.snapshot().find(&["simulate", "eval"]).unwrap().clone();
        assert_eq!((e.count, e.total_ns), (400, 4_000));
    }

    #[test]
    fn renderers_are_deterministic_for_fixed_input() {
        let p = Profiler::enabled();
        let sim = p.timer("simulate");
        sim.add(2, 10_000_000);
        let f = sim.child("fetch");
        f.add(2, 3_000_000);
        f.add_insts(1000);
        sim.child("execute").add(2, 6_000_000);
        let snap = p.snapshot();
        let json = snap.render_json();
        assert_eq!(json, snap.render_json());
        assert!(json.starts_with("{\"phases\":[{\"name\":\"simulate\""));
        assert!(json.contains("\"total_ns\":3000000"));
        let folded = snap.render_folded();
        assert!(folded.contains("simulate;fetch 3000000\n"), "{folded}");
        assert!(folded.contains("simulate 1000000\n"), "{folded}");
        let text = snap.render_text();
        assert!(text.contains("simulate"));
        assert!(text.contains("3.00ms"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_250_000), "2.25ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
