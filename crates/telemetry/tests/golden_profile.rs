//! Golden-file tests pinning the profiler's rendered output. The JSON
//! form is the stable schema `racesim profile --json` embeds per kernel
//! (field names, field order, nesting); the folded form is the
//! flamegraph.pl input contract. Any change must show up as a diff on
//! the files under `tests/golden/`.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDENS=1 cargo test -p racesim-telemetry --test golden_profile`
//!
//! Real phase timings are nondeterministic, so the tree is built from
//! synthetic recorded values via the lock-free [`PhaseTimer`] API — the
//! same recording path the simulator uses.

use racesim_telemetry::Profiler;

/// A deterministic phase tree shaped like a profiled simulation run:
/// `simulate → {prefill, fetch → decode, execute → {mem → l1, core}}`.
fn sample_profiler() -> Profiler {
    let profiler = Profiler::enabled();
    let simulate = profiler.timer("simulate");
    simulate.record_ns(1_000_000);
    simulate.add_insts(9_000);
    simulate.add_cycles(12_000);
    simulate.child("prefill").record_ns(50_000);
    let fetch = simulate.child("fetch");
    fetch.add(9_000, 300_000);
    fetch.child("decode").add(12, 40_000);
    let execute = simulate.child("execute");
    execute.add(9_000, 600_000);
    let mem = execute.child("mem");
    mem.child("l1").add(4_000, 200_000);
    let core = execute.child("core");
    core.child("deps").add_cycles(2_500);
    profiler
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "rendered output drifted from {} (UPDATE_GOLDENS=1 to accept)",
        path.display()
    );
}

#[test]
fn profile_json_matches_golden() {
    check_golden("profile.json", &sample_profiler().snapshot().render_json());
}

#[test]
fn profile_text_matches_golden() {
    check_golden("profile.txt", &sample_profiler().snapshot().render_text());
}

#[test]
fn profile_folded_matches_golden() {
    check_golden(
        "profile.folded",
        &sample_profiler().snapshot().render_folded(),
    );
}
