//! Proves the disabled path really is a no-op: a disabled `Telemetry`
//! or `Profiler` handle must never allocate, no matter how hot the
//! instrumented loop. A counting global allocator measures the delta
//! around a burst of disabled-path operations.
//!
//! This lives in its own integration-test binary because the global
//! allocator is process-wide and concurrent tests would pollute the
//! count; keep this file to a single `#[test]`.

use racesim_telemetry::{Profiler, Telemetry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_handles_never_allocate() {
    // Construct every handle up front; only the loop below is measured.
    let telemetry = Telemetry::disabled();
    let counter = telemetry.counter("sim.instructions");
    let gauge = telemetry.gauge("sim.cycles");
    let histogram = telemetry.histogram("sim.run_us");
    let profiler = Profiler::disabled();
    let timer = profiler.timer("simulate");
    let child = timer.child("fetch");

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        counter.add(i);
        gauge.set(i);
        histogram.record(i);
        let span = profiler.enter("run");
        span.add_insts(i);
        span.add_cycles(i);
        drop(span);
        let derived = timer.child("decode");
        derived.record_ns(i);
        child.add(1, i);
        child.add_insts(i);
        timer.time(|| i.wrapping_mul(3));
        assert_eq!(telemetry.stopwatch().elapsed_us(), 0);
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled-path telemetry/profiler ops allocated"
    );
    // And they recorded nothing.
    assert_eq!(counter.get(), 0);
    assert_eq!(
        profiler.snapshot(),
        racesim_telemetry::ProfileSnapshot::default()
    );
}
