//! Property test: any sequence of journal events round-trips through the
//! JSONL sink and parser losslessly.
//!
//! Entries are compared by their rendered lines rather than by value, so
//! NaN-carrying events (where `PartialEq` would lie) are still checked
//! exactly: parse(render(e)) must re-render to the identical line.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use racesim_telemetry::{parse_journal, Event, JournalEntry};

/// Arbitrary `f64` from raw bits: hits NaN, infinities, subnormals and
/// ordinary values alike.
fn any_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// Arbitrary string, control characters and invalid-UTF-8 replacement
/// included (the shim has no string strategy, so build one from bytes).
fn any_string() -> impl Strategy<Value = String> {
    collection::vec(any::<u8>(), 0..16).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

fn any_event() -> BoxedStrategy<Event> {
    prop_oneof![
        (any::<u64>(), 0..10_000usize, 0..64usize, 0..32usize).prop_map(
            |(seed, budget, n_instances, n_params)| Event::CampaignStart {
                seed,
                budget,
                n_instances,
                n_params,
            }
        ),
        (0..100usize, 0..10_000usize).prop_map(|(next_iteration, budget_remaining)| {
            Event::Resume {
                next_iteration,
                budget_remaining,
            }
        }),
        (
            any_string(),
            any::<u64>(),
            any_string(),
            any::<u64>(),
            any::<u64>(),
            0..256usize,
            0..64usize,
            (any::<u64>(), any::<bool>())
        )
            .prop_map(
                |(
                    core,
                    scale,
                    faults,
                    fault_seed,
                    timeout_ms,
                    threads,
                    workers,
                    (max_iterations, static_bounds),
                )| {
                    Event::CampaignConfig {
                        core,
                        scale,
                        faults,
                        fault_seed,
                        timeout_ms,
                        threads,
                        workers,
                        max_iterations,
                        static_bounds,
                    }
                }
            ),
        (any_string(), any_string()).prop_map(|(param, code)| Event::Frozen { param, code }),
        (0..100usize, 0..512usize)
            .prop_map(|(iteration, configs)| Event::IterationStart { iteration, configs }),
        (
            0..100usize,
            0..512usize,
            any_f64(),
            0..10_000usize,
            0..64usize,
            any::<u64>()
        )
            .prop_map(|(iteration, survivors, best_cost, evals, blocks, micros)| {
                Event::IterationEnd {
                    iteration,
                    survivors,
                    best_cost,
                    evals,
                    blocks,
                    micros,
                }
            }),
        (any_string(), any::<u64>(), any_f64()).prop_map(|(workload, micros, cost)| {
            Event::Evaluation {
                workload,
                micros,
                cost,
            }
        }),
        (any_string(), any::<u64>(), any::<bool>()).prop_map(|(workload, micros, ok)| {
            Event::Measurement {
                workload,
                micros,
                ok,
            }
        }),
        (any_string(), any_string(), any_string()).prop_map(|(kind, workload, reason)| {
            Event::Fault {
                kind,
                workload,
                reason,
            }
        }),
        (any_string(), any_string(), 0..64usize, any_string()).prop_map(
            |(config, kind, after_blocks, reason)| Event::Elimination {
                config,
                kind,
                after_blocks,
                reason,
            }
        ),
        (any_string(), 0..100usize, any_f64(), any_f64()).prop_map(
            |(config, iteration, lower_bound, incumbent_cost)| Event::StaticEliminated {
                config,
                iteration,
                lower_bound,
                incumbent_cost,
            }
        ),
        (any_string(), any_string())
            .prop_map(|(instance, reason)| Event::Quarantine { instance, reason }),
        (0..100usize, any_string())
            .prop_map(|(iteration, path)| Event::Checkpoint { iteration, path }),
        (
            any_f64(),
            0..10_000usize,
            0..1_000usize,
            0..100usize,
            0..100usize,
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(
                |(best_cost, evals, retries, failed_configs, pruned, aborted, micros)| {
                    Event::CampaignEnd {
                        best_cost,
                        evals,
                        retries,
                        failed_configs,
                        pruned,
                        aborted,
                        micros,
                    }
                }
            ),
        (0..64usize, any::<u64>()).prop_map(|(worker, pid)| Event::WorkerSpawned { worker, pid }),
        (0..64usize, any_string())
            .prop_map(|(worker, reason)| Event::WorkerFailed { worker, reason }),
        (0..64usize, any::<u64>())
            .prop_map(|(worker, failures)| Event::WorkerQuarantined { worker, failures }),
        (any_string(), any::<u64>()).prop_map(|(name, value)| Event::CounterFinal { name, value }),
        (any_string(), any::<u64>()).prop_map(|(name, value)| Event::GaugeFinal { name, value }),
        (
            any_string(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(name, count, sum, p50, p90, p99, max)| Event::HistogramFinal {
                    name,
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                    max,
                }
            ),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every generated event sequence survives render → join → parse
    /// with order, timestamps and field values intact.
    #[test]
    fn event_sequences_roundtrip_losslessly(
        events in collection::vec((any::<u64>(), any_event()), 0..24),
    ) {
        let entries: Vec<JournalEntry> = events
            .into_iter()
            .map(|(t_us, event)| JournalEntry { t_us, event })
            .collect();
        let rendered: Vec<String> = entries.iter().map(JournalEntry::render).collect();
        let (parsed, errors) = parse_journal(&rendered.join("\n"));
        prop_assert!(errors.is_empty(), "parse errors: {errors:?}");
        prop_assert_eq!(parsed.len(), entries.len());
        for (back, line) in parsed.iter().zip(&rendered) {
            prop_assert_eq!(&back.render(), line);
        }
    }

    /// f64 payloads round-trip **bit-identically** — the property replay
    /// correctness rests on. Finite values (normals, subnormals, signed
    /// zeros) must come back with the exact same bit pattern; non-finite
    /// values are canonicalized by the marker-string encoding ("NaN",
    /// "inf", "-inf"), so NaN payload bits collapse to the canonical NaN
    /// and infinities stay exact.
    #[test]
    fn f64_payloads_roundtrip_as_bits(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let entry = JournalEntry {
            t_us: 0,
            event: Event::IterationEnd {
                iteration: 0,
                survivors: 1,
                best_cost: v,
                evals: 0,
                blocks: 0,
                micros: 0,
            },
        };
        let back = JournalEntry::parse(&entry.render()).expect("roundtrip parse");
        let Event::IterationEnd { best_cost, .. } = back.event else {
            panic!("variant changed in roundtrip");
        };
        let expect = if v.is_nan() {
            f64::NAN.to_bits()
        } else if v.is_infinite() {
            v.to_bits()
        } else {
            bits
        };
        prop_assert_eq!(
            best_cost.to_bits(),
            expect,
            "payload bits changed: {:016x} -> {:016x}",
            bits,
            best_cost.to_bits()
        );
    }
}
