//! In-memory traces.

use crate::format::{TraceReader, TraceWriter};
use crate::record::{TraceRecord, TraceSink};
use crate::summary::TraceSummary;
use std::io::{self, Read, Write};

/// An in-memory instruction trace.
///
/// This is the form the tuning framework keeps traces in: each workload is
/// recorded once (paper, Section III-C: "benchmark traces are generated on
/// the real hardware platform only once") and then replayed thousands of
/// times across candidate configurations, so traces are held decoded in
/// memory behind an `Arc`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// Creates a buffer with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> TraceBuffer {
        TraceBuffer {
            records: Vec::with_capacity(n),
        }
    }

    /// Drains a [`TraceReader`] into a buffer.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from the reader.
    pub fn from_reader<R: Read>(reader: TraceReader<R>) -> io::Result<TraceBuffer> {
        let records = reader.collect::<io::Result<Vec<_>>>()?;
        Ok(TraceBuffer { records })
    }

    /// Serialises the buffer to a writer in the trace format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<W> {
        let mut tw = TraceWriter::new(w)?;
        for r in &self.records {
            tw.write(r)?;
        }
        tw.finish()
    }

    /// The records in execution order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Computes summary statistics.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::of(&self.records)
    }
}

impl TraceSink for TraceBuffer {
    fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

impl FromIterator<TraceRecord> for TraceBuffer {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        TraceBuffer {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for TraceBuffer {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::EncodedInst;

    #[test]
    fn buffer_roundtrips_through_serialisation() {
        let buf: TraceBuffer = (0..100u64)
            .map(|i| TraceRecord::memory(0x1000 + i * 4, EncodedInst(i), i * 64))
            .collect();
        let bytes = buf.write_to(Vec::new()).unwrap();
        let back = TraceBuffer::from_reader(TraceReader::new(bytes.as_slice()).unwrap()).unwrap();
        assert_eq!(back, buf);
    }

    #[test]
    fn sink_and_extend() {
        let mut buf = TraceBuffer::with_capacity(2);
        assert!(buf.is_empty());
        buf.push(TraceRecord::plain(0, EncodedInst(0))).unwrap();
        buf.extend([TraceRecord::plain(4, EncodedInst(1))]);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.iter().count(), 2);
        assert_eq!((&buf).into_iter().count(), 2);
    }
}
