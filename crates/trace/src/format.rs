//! Serialised trace streams.

use crate::record::{TraceRecord, TraceSink};
use crate::varint;
use racesim_isa::EncodedInst;
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// Magic bytes opening every trace stream.
const MAGIC: &[u8; 6] = b"RSIF\x00\x01";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

// Wire flags. The low three bits mirror `TraceRecord`'s internal flags;
// the upper bits drive the compression.
const W_HAS_EA: u8 = 1 << 0;
const W_IS_BRANCH: u8 = 1 << 1;
const W_TAKEN: u8 = 1 << 2;
const W_PC_EXPLICIT: u8 = 1 << 3;
const W_WORD_EXPLICIT: u8 = 1 << 4;
/// End-of-stream marker byte (an impossible flag combination).
const W_END: u8 = 0xff;

/// Streaming trace encoder.
///
/// Records are delta- and dictionary-compressed: the PC is implicit while
/// control flow is sequential, and the instruction word for a PC is
/// transmitted only on its first occurrence. Always call
/// [`TraceWriter::finish`] to emit the end-of-stream marker.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    expected_pc: u64,
    last_ea: u64,
    seen: HashMap<u64, EncodedInst>,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a new trace stream, writing the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut w: W) -> io::Result<TraceWriter<W>> {
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            expected_pc: 0,
            last_ea: 0,
            seen: HashMap::new(),
            count: 0,
        })
    }

    /// Number of records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, rec: &TraceRecord) -> io::Result<()> {
        let mut flags = rec.flags() & (W_HAS_EA | W_IS_BRANCH | W_TAKEN);
        let pc = rec.pc();
        if pc != self.expected_pc {
            flags |= W_PC_EXPLICIT;
        }
        let word_known = self.seen.get(&pc) == Some(&rec.word());
        if !word_known {
            flags |= W_WORD_EXPLICIT;
        }
        self.w.write_all(&[flags])?;
        if flags & W_PC_EXPLICIT != 0 {
            varint::write_i64(&mut self.w, pc.wrapping_sub(self.expected_pc) as i64)?;
        }
        if flags & W_WORD_EXPLICIT != 0 {
            self.w.write_all(&rec.word().word().to_le_bytes())?;
            self.seen.insert(pc, rec.word());
        }
        if flags & W_HAS_EA != 0 {
            let ea = rec.raw_ea();
            varint::write_i64(&mut self.w, ea.wrapping_sub(self.last_ea) as i64)?;
            self.last_ea = ea;
        }
        if flags & W_TAKEN != 0 {
            varint::write_i64(&mut self.w, rec.raw_target().wrapping_sub(pc) as i64)?;
        }
        self.expected_pc = rec.next_pc();
        self.count += 1;
        Ok(())
    }

    /// Writes the end-of-stream marker and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(&[W_END])?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn push(&mut self, record: TraceRecord) -> io::Result<()> {
        self.write(&record)
    }
}

/// Streaming trace decoder.
///
/// Iterate with [`TraceReader::next_record`] or via the [`Iterator`]
/// implementation (which yields `io::Result<TraceRecord>`).
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    expected_pc: u64,
    last_ea: u64,
    seen: HashMap<u64, EncodedInst>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic or version does not match, or any
    /// underlying I/O error.
    pub fn new(mut r: R) -> io::Result<TraceReader<R>> {
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a racesim trace (bad magic)",
            ));
        }
        let mut ver = [0u8; 2];
        r.read_exact(&mut ver)?;
        if u16::from_le_bytes(ver) != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", u16::from_le_bytes(ver)),
            ));
        }
        Ok(TraceReader {
            r,
            expected_pc: 0,
            last_ea: 0,
            seen: HashMap::new(),
            done: false,
        })
    }

    /// Reads the next record, or `None` at the end-of-stream marker.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a corrupt stream (including truncation
    /// before the end marker) and propagates underlying I/O errors.
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        if self.done {
            return Ok(None);
        }
        let mut flags_b = [0u8; 1];
        self.r.read_exact(&mut flags_b)?;
        let flags = flags_b[0];
        if flags == W_END {
            self.done = true;
            return Ok(None);
        }
        if flags & !(W_HAS_EA | W_IS_BRANCH | W_TAKEN | W_PC_EXPLICIT | W_WORD_EXPLICIT) != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt trace: bad flags {flags:#x}"),
            ));
        }
        let pc = if flags & W_PC_EXPLICIT != 0 {
            self.expected_pc
                .wrapping_add(varint::read_i64(&mut self.r)? as u64)
        } else {
            self.expected_pc
        };
        let word = if flags & W_WORD_EXPLICIT != 0 {
            let mut b = [0u8; 8];
            self.r.read_exact(&mut b)?;
            let w = EncodedInst(u64::from_le_bytes(b));
            self.seen.insert(pc, w);
            w
        } else {
            *self.seen.get(&pc).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt trace: no cached word for pc {pc:#x}"),
                )
            })?
        };
        let ea = if flags & W_HAS_EA != 0 {
            let ea = self
                .last_ea
                .wrapping_add(varint::read_i64(&mut self.r)? as u64);
            self.last_ea = ea;
            ea
        } else {
            0
        };
        let target = if flags & W_TAKEN != 0 {
            pc.wrapping_add(varint::read_i64(&mut self.r)? as u64)
        } else {
            0
        };
        let rec = TraceRecord::from_raw(pc, word, ea, target, flags & 0x7);
        self.expected_pc = rec.next_pc();
        Ok(Some(rec))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        TraceReader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(roundtrip(&[]), vec![]);
    }

    #[test]
    fn mixed_records_roundtrip() {
        let recs = vec![
            TraceRecord::plain(0x1000, EncodedInst(0xAB)),
            TraceRecord::memory(0x1004, EncodedInst(0x21), 0xdead_0000),
            TraceRecord::memory(0x1008, EncodedInst(0x21), 0xdead_0040),
            TraceRecord::branch(0x100c, EncodedInst(0x23), true, 0x1000),
            TraceRecord::plain(0x1000, EncodedInst(0xAB)),
            TraceRecord::branch(0x1004, EncodedInst(0x24), false, 0),
        ];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn loop_traces_compress_well() {
        // A 4-instruction loop executed 1000 times.
        let mut recs = Vec::new();
        for _ in 0..1000 {
            recs.push(TraceRecord::plain(0x1000, EncodedInst(0x01)));
            recs.push(TraceRecord::memory(0x1004, EncodedInst(0x21), 0x8000));
            recs.push(TraceRecord::plain(0x1008, EncodedInst(0x02)));
            recs.push(TraceRecord::branch(0x100c, EncodedInst(0x25), true, 0x1000));
        }
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        for r in &recs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let per_record = bytes.len() as f64 / recs.len() as f64;
        assert!(per_record < 3.0, "got {per_record} bytes/record");
        let back = TraceReader::new(bytes.as_slice())
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOPE\x00\x01\x01\x00".to_vec();
        assert!(TraceReader::new(bytes.as_slice()).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&99u16.to_le_bytes());
        assert!(TraceReader::new(bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_silent_eof() {
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        w.write(&TraceRecord::plain(0x1000, EncodedInst(1)))
            .unwrap();
        w.write(&TraceRecord::plain(0x1004, EncodedInst(2)))
            .unwrap();
        // No finish(): stream lacks the end marker.
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_record().unwrap().is_some());
        assert!(r.next_record().unwrap().is_some());
        assert!(r.next_record().is_err(), "missing end marker must error");
    }

    #[test]
    fn corrupt_flags_detected() {
        let mut bytes = Vec::new();
        let w = TraceWriter::new(&mut bytes).unwrap();
        w.finish().unwrap();
        let last = bytes.len() - 1;
        bytes[last] = 0xE0; // invalid flag combination, not W_END
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn writer_counts_records() {
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes).unwrap();
        assert_eq!(w.count(), 0);
        w.write(&TraceRecord::plain(0, EncodedInst(0))).unwrap();
        assert_eq!(w.count(), 1);
    }
}
