//! # racesim-trace
//!
//! A streaming binary instruction-trace format — the project's equivalent of
//! Sniper's SIFT (Sniper Instruction Trace Format).
//!
//! The paper records each micro-benchmark and SPEC region **once** on the
//! ARM board and replays the trace through Sniper's timing models for every
//! simulated configuration. This crate plays the same role: the functional
//! front-end (in `racesim-kernels`) records a [`TraceRecord`] per executed
//! instruction, and the timing simulator (`racesim-sim`) replays them.
//!
//! Each record carries exactly what a timing model needs from the
//! front-end:
//!
//! * the program counter,
//! * the raw instruction word (decoded lazily, with a per-PC cache, by the
//!   consumer — like SIFT carrying instruction bytes),
//! * the effective address of memory operations,
//! * the architectural outcome of branches.
//!
//! The on-disk encoding is compact: program counters are implicit while
//! control flow is sequential, instruction words are transmitted only the
//! first time a PC is seen, and addresses are delta-encoded varints. Loop
//! traces compress to roughly 2–4 bytes per instruction.
//!
//! # Example
//!
//! ```
//! use racesim_trace::{TraceBuffer, TraceReader, TraceRecord, TraceWriter};
//! use racesim_isa::EncodedInst;
//!
//! let mut bytes = Vec::new();
//! let mut w = TraceWriter::new(&mut bytes)?;
//! w.write(&TraceRecord::plain(0x1000, EncodedInst(1)))?;
//! w.write(&TraceRecord::memory(0x1004, EncodedInst(33), 0xdead_beef))?;
//! w.finish()?;
//!
//! let buf = TraceBuffer::from_reader(TraceReader::new(bytes.as_slice())?)?;
//! assert_eq!(buf.len(), 2);
//! assert_eq!(buf.records()[1].ea(), Some(0xdead_beef));
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod buffer;
mod format;
mod record;
mod static_summary;
mod summary;
mod varint;

pub use buffer::TraceBuffer;
pub use format::{TraceReader, TraceWriter, FORMAT_VERSION};
pub use record::{TraceRecord, TraceSink};
pub use static_summary::StaticSummary;
pub use summary::TraceSummary;
