//! Trace records and sinks.

use racesim_isa::EncodedInst;

const F_HAS_EA: u8 = 1 << 0;
const F_IS_BRANCH: u8 = 1 << 1;
const F_TAKEN: u8 = 1 << 2;

/// One dynamically executed instruction as observed by the front-end.
///
/// Construct with [`TraceRecord::plain`], [`TraceRecord::memory`] or
/// [`TraceRecord::branch`]; the kind determines which accessors return
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    pc: u64,
    word: EncodedInst,
    ea: u64,
    target: u64,
    flags: u8,
}

impl TraceRecord {
    /// A non-memory, non-branch instruction.
    pub fn plain(pc: u64, word: EncodedInst) -> TraceRecord {
        TraceRecord {
            pc,
            word,
            ea: 0,
            target: 0,
            flags: 0,
        }
    }

    /// A load or store with its effective address.
    pub fn memory(pc: u64, word: EncodedInst, ea: u64) -> TraceRecord {
        TraceRecord {
            pc,
            word,
            ea,
            target: 0,
            flags: F_HAS_EA,
        }
    }

    /// A branch with its architectural outcome.
    ///
    /// `target` is meaningful only when `taken` is true.
    pub fn branch(pc: u64, word: EncodedInst, taken: bool, target: u64) -> TraceRecord {
        TraceRecord {
            pc,
            word,
            ea: 0,
            target: if taken { target } else { 0 },
            flags: F_IS_BRANCH | if taken { F_TAKEN } else { 0 },
        }
    }

    pub(crate) fn from_raw(pc: u64, word: EncodedInst, ea: u64, target: u64, flags: u8) -> Self {
        TraceRecord {
            pc,
            word,
            ea,
            target,
            flags,
        }
    }

    /// The program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The raw instruction word.
    #[inline]
    pub fn word(&self) -> EncodedInst {
        self.word
    }

    /// The effective address, for memory operations.
    #[inline]
    pub fn ea(&self) -> Option<u64> {
        (self.flags & F_HAS_EA != 0).then_some(self.ea)
    }

    /// Whether this record is a branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.flags & F_IS_BRANCH != 0
    }

    /// Whether a branch was taken.
    #[inline]
    pub fn taken(&self) -> bool {
        self.flags & F_TAKEN != 0
    }

    /// The branch target, for taken branches.
    #[inline]
    pub fn target(&self) -> Option<u64> {
        (self.flags & F_TAKEN != 0).then_some(self.target)
    }

    /// The address control flow continued at after this instruction.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        if self.taken() {
            self.target
        } else {
            self.pc + racesim_isa::INST_BYTES
        }
    }

    pub(crate) fn flags(&self) -> u8 {
        self.flags
    }

    pub(crate) fn raw_ea(&self) -> u64 {
        self.ea
    }

    pub(crate) fn raw_target(&self) -> u64 {
        self.target
    }
}

/// Anything that can consume a stream of trace records.
///
/// Implemented by [`TraceBuffer`](crate::TraceBuffer) (in-memory) and
/// [`TraceWriter`](crate::TraceWriter) (serialised), so trace producers —
/// the functional front-end in `racesim-kernels` — are agnostic about where
/// the trace goes.
pub trait TraceSink {
    /// Consumes one record.
    ///
    /// # Errors
    ///
    /// I/O-backed sinks report write failures.
    fn push(&mut self, record: TraceRecord) -> std::io::Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_kind() {
        let p = TraceRecord::plain(0x10, EncodedInst(7));
        assert_eq!(p.ea(), None);
        assert!(!p.is_branch());
        assert_eq!(p.target(), None);
        assert_eq!(p.next_pc(), 0x14);

        let m = TraceRecord::memory(0x10, EncodedInst(7), 0x999);
        assert_eq!(m.ea(), Some(0x999));

        let b = TraceRecord::branch(0x10, EncodedInst(7), true, 0x40);
        assert!(b.is_branch() && b.taken());
        assert_eq!(b.target(), Some(0x40));
        assert_eq!(b.next_pc(), 0x40);

        let nt = TraceRecord::branch(0x10, EncodedInst(7), false, 0x40);
        assert!(nt.is_branch() && !nt.taken());
        assert_eq!(nt.target(), None);
        assert_eq!(nt.next_pc(), 0x14);
    }
}
