//! Static instruction-site summary: the per-*site* analogue of
//! [`TraceSummary`](crate::TraceSummary)'s per-*execution* counts.
//!
//! Where `TraceSummary` counts dynamic instructions in a recorded trace,
//! `StaticSummary` counts decoded instruction sites in a program's code
//! section — what an instruction cache, a branch predictor's site table,
//! or a static analysis pass sees before anything runs. The analyzer's
//! kernel-IR passes build their parameter-coverage matrix on top of it.

use racesim_isa::{InstClass, StaticInst};

/// Per-class counts of decoded instruction sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticSummary {
    /// Instruction sites summarised (including undecodable slots only if
    /// the caller chose to pass them — normally decoded sites only).
    pub instructions: u64,
    /// Sites per timing class, indexed by [`InstClass::index`].
    pub class_counts: [u64; InstClass::COUNT],
}

impl Default for StaticSummary {
    fn default() -> StaticSummary {
        StaticSummary {
            instructions: 0,
            class_counts: [0; InstClass::COUNT],
        }
    }
}

impl StaticSummary {
    /// Summarises a set of decoded instruction sites (typically the
    /// reachable subset of a program — pass what the analysis proved
    /// executable, not the raw code section, if the distinction matters).
    pub fn of_insts<'a>(insts: impl IntoIterator<Item = &'a StaticInst>) -> StaticSummary {
        let mut s = StaticSummary::default();
        for inst in insts {
            s.instructions += 1;
            s.class_counts[inst.class.index()] += 1;
        }
        s
    }

    /// Sites of one timing class.
    #[inline]
    pub fn count(&self, class: InstClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Whether at least one site of `class` exists.
    #[inline]
    pub fn has_class(&self, class: InstClass) -> bool {
        self.count(class) > 0
    }

    /// Load sites.
    pub fn loads(&self) -> u64 {
        self.count(InstClass::Load)
    }

    /// Store sites.
    pub fn stores(&self) -> u64 {
        self.count(InstClass::Store)
    }

    /// Load plus store sites.
    pub fn memory_ops(&self) -> u64 {
        self.loads() + self.stores()
    }

    /// Conditional-branch sites (the direction predictor's working set).
    pub fn cond_branches(&self) -> u64 {
        self.count(InstClass::BranchCond)
    }

    /// Indirect-branch sites (`br`), excluding calls and returns.
    pub fn indirect_branches(&self) -> u64 {
        self.count(InstClass::BranchIndirect)
    }

    /// Call sites (`bl`, `blr`) — what exercises a return-address stack.
    pub fn calls(&self) -> u64 {
        self.count(InstClass::BranchCall)
    }

    /// Return sites (`ret`).
    pub fn returns(&self) -> u64 {
        self.count(InstClass::BranchRet)
    }

    /// Branch sites of any kind.
    pub fn branches(&self) -> u64 {
        InstClass::ALL
            .iter()
            .filter(|c| c.is_branch())
            .map(|&c| self.count(c))
            .sum()
    }

    /// FP and SIMD sites.
    pub fn fp_simd(&self) -> u64 {
        InstClass::ALL
            .iter()
            .filter(|c| c.is_fp_or_simd())
            .map(|&c| self.count(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_decoder::Decoder;
    use racesim_isa::{asm::Asm, Reg};

    #[test]
    fn static_summary_counts_sites_not_executions() {
        let mut a = Asm::new();
        a.add(Reg::x(0), Reg::x(1), Reg::x(2));
        a.ldr8(Reg::x(1), Reg::x(2), 0);
        a.str8(Reg::x(1), Reg::x(2), 0);
        a.fadd(Reg::v(0), Reg::v(1), Reg::v(2));
        let top = a.here();
        a.b(top); // a loop: still exactly one branch *site*
        a.ret();
        let p = a.finish();
        let insts = Decoder::new().decode_all(&p.code).expect("decodes");
        let s = StaticSummary::of_insts(&insts);
        assert_eq!(s.instructions, 6);
        assert_eq!(s.loads(), 1);
        assert_eq!(s.stores(), 1);
        assert_eq!(s.memory_ops(), 2);
        assert_eq!(s.branches(), 2);
        assert_eq!(s.returns(), 1);
        assert_eq!(s.fp_simd(), 1);
        assert!(s.has_class(InstClass::FpAdd));
        assert!(!s.has_class(InstClass::FpSqrt));
    }
}
