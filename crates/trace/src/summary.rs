//! Trace summary statistics.

use crate::record::TraceRecord;
use racesim_isa::{InstClass, Opcode};
use std::fmt;

/// Aggregate statistics of a trace, analogous to the dynamic instruction
/// counts reported in Table I of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches of any kind.
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken_branches: u64,
    /// Dynamic indirect branches (`br`, `blr`, `ret`).
    pub indirect_branches: u64,
    /// Dynamic FP and SIMD operations.
    pub fp_simd: u64,
    /// Distinct program counters (static code footprint proxy).
    pub unique_pcs: u64,
}

impl TraceSummary {
    /// Computes a summary over a record slice.
    pub fn of(records: &[TraceRecord]) -> TraceSummary {
        let mut s = TraceSummary {
            instructions: records.len() as u64,
            ..TraceSummary::default()
        };
        let mut pcs = std::collections::HashSet::new();
        for r in records {
            pcs.insert(r.pc());
            let Some(op) = r.word().opcode() else {
                continue;
            };
            let class = op.class();
            match class {
                InstClass::Load => s.loads += 1,
                InstClass::Store => s.stores += 1,
                c if c.is_branch() => {
                    s.branches += 1;
                    if r.taken() {
                        s.taken_branches += 1;
                    }
                    if c.is_indirect_branch() || op == Opcode::Blr {
                        s.indirect_branches += 1;
                    }
                }
                c if c.is_fp_or_simd() => s.fp_simd += 1,
                _ => {}
            }
        }
        s.unique_pcs = pcs.len() as u64;
        s
    }

    /// Loads plus stores.
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts ({} loads, {} stores, {} branches [{} taken, {} indirect], {} fp/simd, {} unique pcs)",
            self.instructions,
            self.loads,
            self.stores,
            self.branches,
            self.taken_branches,
            self.indirect_branches,
            self.fp_simd,
            self.unique_pcs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Reg};

    #[test]
    fn summary_counts_by_class() {
        // Assemble real words so opcode classification is exercised.
        let mut a = Asm::new();
        a.add(Reg::x(0), Reg::x(1), Reg::x(2)); // alu
        a.ldr8(Reg::x(1), Reg::x(2), 0); // load
        a.str8(Reg::x(1), Reg::x(2), 0); // store
        a.fadd(Reg::v(0), Reg::v(1), Reg::v(2)); // fp
        let l = a.here();
        a.b(l); // branch
        a.ret(); // indirect branch
        let p = a.finish();

        let records = vec![
            TraceRecord::plain(0x00, p.code[0]),
            TraceRecord::memory(0x04, p.code[1], 0x100),
            TraceRecord::memory(0x08, p.code[2], 0x108),
            TraceRecord::plain(0x0c, p.code[3]),
            TraceRecord::branch(0x10, p.code[4], true, 0x10),
            TraceRecord::branch(0x14, p.code[5], true, 0x00),
            // Re-execution of the first pc.
            TraceRecord::plain(0x00, p.code[0]),
        ];
        let s = TraceSummary::of(&records);
        assert_eq!(s.instructions, 7);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.memory_ops(), 2);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 2);
        assert_eq!(s.indirect_branches, 1);
        assert_eq!(s.fp_simd, 1);
        assert_eq!(s.unique_pcs, 6);
        let text = s.to_string();
        assert!(text.contains("7 insts"));
    }
}
