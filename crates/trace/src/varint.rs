//! LEB128 varint and zigzag codecs used by the trace format.

use std::io::{self, Read, Write};

/// Writes an unsigned LEB128 varint.
pub fn write_u64<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 varint.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encodes a signed integer for varint transmission.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Reverses [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a zigzag-encoded signed varint.
pub fn write_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    write_u64(w, zigzag(v))
}

/// Reads a zigzag-encoded signed varint.
pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    read_u64(r).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v, "{v}");
    }

    fn roundtrip_i(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v, "{v}");
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0, 1, -1, 63, -64, i32::MIN as i64, i64::MAX, i64::MIN] {
            roundtrip_i(v);
        }
    }

    #[test]
    fn zigzag_small_values_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -1000..1000 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let buf = vec![0x80u8, 0x80];
        assert!(read_u64(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn overlong_input_errors() {
        let buf = vec![0xffu8; 11];
        assert!(read_u64(&mut buf.as_slice()).is_err());
    }
}
