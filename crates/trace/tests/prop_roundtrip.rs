//! Property tests: any well-formed record sequence survives a
//! serialisation round-trip.

use proptest::prelude::*;
use racesim_isa::EncodedInst;
use racesim_trace::{TraceBuffer, TraceReader, TraceRecord};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(pc, word, ea, target, kind, taken)| match kind {
            0 => TraceRecord::plain(pc, EncodedInst(word)),
            1 => TraceRecord::memory(pc, EncodedInst(word), ea),
            _ => TraceRecord::branch(pc, EncodedInst(word), taken, target),
        })
}

proptest! {
    #[test]
    fn roundtrip_arbitrary_records(records in proptest::collection::vec(arb_record(), 0..200)) {
        let buf: TraceBuffer = records.iter().copied().collect();
        let bytes = buf.write_to(Vec::new()).unwrap();
        let back = TraceBuffer::from_reader(TraceReader::new(bytes.as_slice()).unwrap()).unwrap();
        prop_assert_eq!(back, buf);
    }

    #[test]
    fn same_pc_same_word_compresses(word in any::<u64>(), n in 1usize..100) {
        // Dictionary compression must not change semantics when the same pc
        // is revisited with an identical word.
        let rec = TraceRecord::memory(0x4000, EncodedInst(word), 0x100);
        let buf: TraceBuffer = std::iter::repeat_n(rec, n).collect();
        let bytes = buf.write_to(Vec::new()).unwrap();
        let back = TraceBuffer::from_reader(TraceReader::new(bytes.as_slice()).unwrap()).unwrap();
        prop_assert_eq!(back.records(), buf.records());
    }
}
