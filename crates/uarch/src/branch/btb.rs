//! Branch target buffer.

/// A set-associative branch target buffer with LRU replacement.
#[derive(Debug, Clone)]
pub struct Btb {
    // (tag pc, target, stamp) per way; tag 0 means invalid (pc 0 never
    // holds a branch in our address layout).
    ways: Vec<(u64, u64, u64)>,
    sets: usize,
    assoc: usize,
    clock: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `ways` is zero, or
    /// `ways` does not divide `entries`.
    pub fn new(entries: u32, ways: u32) -> Btb {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let sets = (entries / ways) as usize;
        assert!(sets.is_power_of_two(), "BTB sets must be a power of two");
        Btb {
            ways: vec![(0, 0, 0); entries as usize],
            sets,
            assoc: ways as usize,
            clock: 0,
        }
    }

    fn set_range(&self, pc: u64) -> std::ops::Range<usize> {
        let set = ((pc >> 2) as usize) & (self.sets - 1);
        set * self.assoc..(set + 1) * self.assoc
    }

    /// The predicted target for `pc`, if present.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let r = self.set_range(pc);
        self.ways[r].iter().find(|(t, _, _)| *t == pc).map(|e| e.1)
    }

    /// Installs or refreshes the target for a taken branch.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.clock += 1;
        let r = self.set_range(pc);
        if let Some(e) = self.ways[r.clone()].iter_mut().find(|(t, _, _)| *t == pc) {
            e.1 = target;
            e.2 = self.clock;
            return;
        }
        // Evict LRU (invalid entries have stamp 0 and lose ties first).
        let clock = self.clock;
        let victim = self.ways[r]
            .iter_mut()
            .min_by_key(|(_, _, stamp)| *stamp)
            .expect("BTB set is non-empty");
        *victim = (pc, target, clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_after_update() {
        let mut b = Btb::new(64, 2);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn conflicting_pcs_evict_lru() {
        let mut b = Btb::new(4, 2); // 2 sets x 2 ways
                                    // Three pcs in the same set (stride = sets*4 = 8 bytes).
        b.update(0x1000, 1);
        b.update(0x1008, 2);
        b.lookup(0x1000); // lookup does not refresh LRU (no clock bump)
        b.update(0x1010, 3); // evicts 0x1000 (oldest stamp)
        assert_eq!(b.lookup(0x1000), None);
        assert_eq!(b.lookup(0x1008), Some(2));
        assert_eq!(b.lookup(0x1010), Some(3));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut b = Btb::new(64, 2); // 32 sets
        b.update(0x1000, 1);
        b.update(0x1004, 2); // next set
        assert_eq!(b.lookup(0x1000), Some(1));
        assert_eq!(b.lookup(0x1004), Some(2));
    }
}
