//! Direction (taken / not-taken) predictors.

/// A conditional-branch direction predictor.
pub trait DirectionPredictor: std::fmt::Debug + Send {
    /// Predicts whether the branch at `pc` is taken.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the architectural outcome.
    fn update(&mut self, pc: u64, taken: bool);
}

/// Always-taken or always-not-taken.
#[derive(Debug, Clone, Copy)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Predicts every branch taken.
    pub fn taken() -> StaticPredictor {
        StaticPredictor { taken: true }
    }

    /// Predicts every branch not taken.
    pub fn not_taken() -> StaticPredictor {
        StaticPredictor { taken: false }
    }
}

impl DirectionPredictor for StaticPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        self.taken
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}
}

/// Saturating 2-bit counter.
#[derive(Debug, Clone, Copy, Default)]
struct Counter2(u8);

impl Counter2 {
    fn predict(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Classic PC-indexed table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<Counter2>,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a bimodal predictor with `2^table_bits` counters,
    /// initialised weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` exceeds 24 (a 16M-entry table is beyond any
    /// plausible hardware).
    pub fn new(table_bits: u8) -> BimodalPredictor {
        assert!(table_bits <= 24, "bimodal table too large");
        let n = 1usize << table_bits;
        BimodalPredictor {
            table: vec![Counter2(2); n],
            mask: n as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for BimodalPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
    }
}

/// Gshare: global history XORed with the PC indexes the counter table
/// (McFarling).
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<Counter2>,
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl GsharePredictor {
    /// Creates a gshare predictor.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits > 24` or `history_bits > 32`.
    pub fn new(table_bits: u8, history_bits: u8) -> GsharePredictor {
        assert!(table_bits <= 24, "gshare table too large");
        assert!(history_bits <= 32, "history too long");
        let n = 1usize << table_bits;
        GsharePredictor {
            table: vec![Counter2(2); n],
            mask: n as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl DirectionPredictor for GsharePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].update(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }
}

/// Tournament predictor: bimodal and gshare components with a per-PC
/// 2-bit chooser (Alpha 21264 style).
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    bimodal: BimodalPredictor,
    gshare: GsharePredictor,
    chooser: Vec<Counter2>,
    mask: u64,
}

impl TournamentPredictor {
    /// Creates a tournament predictor; each component table has
    /// `2^table_bits` counters.
    pub fn new(table_bits: u8, history_bits: u8) -> TournamentPredictor {
        let n = 1usize << table_bits;
        TournamentPredictor {
            bimodal: BimodalPredictor::new(table_bits),
            gshare: GsharePredictor::new(table_bits, history_bits),
            chooser: vec![Counter2(2); n],
            mask: n as u64 - 1,
        }
    }
}

impl DirectionPredictor for TournamentPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        let use_gshare = self.chooser[((pc >> 2) & self.mask) as usize].predict();
        if use_gshare {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let pb = self.bimodal.predict(pc);
        let pg = self.gshare.predict(pc);
        // Train the chooser toward whichever component was right.
        if pb != pg {
            let c = &mut self.chooser[((pc >> 2) & self.mask) as usize];
            c.update(pg == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2(0);
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        assert_eq!(c.0, 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert!(!c.predict());
        assert_eq!(c.0, 0);
    }

    #[test]
    fn static_predictors_never_learn() {
        let mut t = StaticPredictor::taken();
        let mut n = StaticPredictor::not_taken();
        t.update(0, false);
        n.update(0, true);
        assert!(t.predict(0));
        assert!(!n.predict(0));
    }

    #[test]
    fn bimodal_learns_bias_quickly() {
        let mut p = BimodalPredictor::new(10);
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
        // Distinct pcs are independent (within the table size).
        assert!(p.predict(0x104));
    }

    #[test]
    fn gshare_history_wraps_and_masks() {
        let mut p = GsharePredictor::new(8, 4);
        for k in 0..100 {
            p.update(0x200, k % 2 == 0);
        }
        assert!(p.history <= 0xf, "history confined to 4 bits");
    }

    #[test]
    fn tournament_tracks_the_better_component() {
        let mut p = TournamentPredictor::new(10, 8);
        // Alternating pattern: gshare wins, tournament should converge.
        let mut mis = 0;
        for k in 0..400 {
            let taken = k % 2 == 0;
            if p.predict(0x300) != taken {
                mis += 1;
            }
            p.update(0x300, taken);
        }
        assert!(mis < 60, "tournament converges on pattern: {mis}");
    }
}
