//! Indirect branch target prediction.

/// Path-history indirect predictor: a target cache indexed by the PC
/// hashed with recent target history (a two-level scheme in the spirit of
/// Chang/Hao/Patt's tagged target cache).
///
/// This is the "indirect branch support" the paper adds after the `CS1`
/// micro-benchmark — "a case statement that benefits from indirect branch
/// support" — exposed a high residual error.
#[derive(Debug, Clone)]
pub struct PathHistoryPredictor {
    table: Vec<(u64, u64)>, // (tag, target)
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl PathHistoryPredictor {
    /// Creates a predictor with `2^table_bits` entries and
    /// `history_bits` of path history.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits > 20` or `history_bits > 32`.
    pub fn new(table_bits: u8, history_bits: u8) -> PathHistoryPredictor {
        assert!(table_bits <= 20, "indirect table too large");
        assert!(history_bits <= 32, "path history too long");
        let n = 1usize << table_bits;
        PathHistoryPredictor {
            table: vec![(u64::MAX, 0); n],
            mask: n as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Fibonacci multiply-shift so that histories differing only in high
        // bits still spread across the table.
        let h = self.history.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        (((pc >> 2) ^ h) & self.mask) as usize
    }

    /// Predicts the target for the indirect branch at `pc`.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.table[self.index(pc)];
        (tag == pc).then_some(target)
    }

    /// Trains with the architectural target and folds it into the path
    /// history.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.table[i] = (pc, target);
        // Mix the target before folding so aligned targets (whose low bits
        // are all zero) still perturb a short history register.
        let t = (target >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
        self.history = ((self.history << 4) ^ t) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_target_learned_immediately() {
        let mut p = PathHistoryPredictor::new(8, 8);
        assert_eq!(p.predict(0x100), None);
        p.update(0x100, 0x2000);
        // History changed after the update, so the next lookup uses a new
        // index; train once more along the same path.
        p.update(0x100, 0x2000);
        // With a stable repeating path the predictor converges; verify over
        // a few rounds.
        let mut correct = 0;
        for _ in 0..10 {
            if p.predict(0x100) == Some(0x2000) {
                correct += 1;
            }
            p.update(0x100, 0x2000);
        }
        assert!(correct >= 8, "{correct}");
    }

    #[test]
    fn cycling_targets_distinguished_by_history() {
        let mut p = PathHistoryPredictor::new(10, 12);
        let targets = [0x2000u64, 0x3000, 0x4000];
        // Warm up.
        for k in 0..30usize {
            p.update(0x100, targets[k % 3]);
        }
        let mut correct = 0;
        for k in 30..130usize {
            let t = targets[k % 3];
            if p.predict(0x100) == Some(t) {
                correct += 1;
            }
            p.update(0x100, t);
        }
        assert!(
            correct >= 90,
            "path history should learn the cycle: {correct}"
        );
    }
}
