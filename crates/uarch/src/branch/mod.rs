//! Branch prediction unit.
//!
//! The paper calls the branch predictor the canonical "specialized
//! component … usually not disclosed at all" and therefore an "ideal
//! candidate for automated tuning". This module provides the predictor
//! zoo the tuner selects from: four direction predictors, a set-associative
//! BTB, a return-address stack and an optional path-history indirect
//! predictor (added in the paper's step 5 after `CS1` exposed the missing
//! indirect-branch support).

mod btb;
mod direction;
mod indirect;
mod ras;

pub use btb::Btb;
pub use direction::{
    BimodalPredictor, DirectionPredictor, GsharePredictor, StaticPredictor, TournamentPredictor,
};
pub use indirect::PathHistoryPredictor;
pub use ras::ReturnAddressStack;

use racesim_isa::{DynInst, InstClass};
use serde::{Deserialize, Serialize};

/// Direction-predictor selection and sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirPredictorConfig {
    /// Always predict taken.
    StaticTaken,
    /// Always predict not-taken.
    StaticNotTaken,
    /// 2-bit counters indexed by PC.
    Bimodal {
        /// log2 of the counter-table size.
        table_bits: u8,
    },
    /// Global history XOR PC indexing a 2-bit counter table.
    Gshare {
        /// log2 of the counter-table size.
        table_bits: u8,
        /// Global-history length in bits.
        history_bits: u8,
    },
    /// Bimodal + gshare with a choice predictor.
    Tournament {
        /// log2 of each component table size.
        table_bits: u8,
        /// Global-history length for the gshare component.
        history_bits: u8,
    },
}

/// Indirect-target predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndirectPredictorConfig {
    /// No dedicated predictor: indirect branches use the BTB's last-seen
    /// target.
    BtbOnly,
    /// Path-history hashed target cache.
    PathHistory {
        /// log2 of the target-cache size.
        table_bits: u8,
        /// Path-history length in bits.
        history_bits: u8,
    },
}

/// Full branch-unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Direction predictor.
    pub direction: DirPredictorConfig,
    /// Branch target buffer entries (power of two).
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Indirect-target predictor.
    pub indirect: IndirectPredictorConfig,
    /// Return-address stack depth.
    pub ras_entries: u32,
    /// Full pipeline-flush penalty on a mispredict, in cycles.
    pub mispredict_penalty: u64,
    /// Front-end bubble when a taken branch misses the BTB, in cycles.
    pub btb_miss_penalty: u64,
}

impl Default for BranchConfig {
    fn default() -> BranchConfig {
        BranchConfig {
            direction: DirPredictorConfig::Bimodal { table_bits: 12 },
            btb_entries: 256,
            btb_ways: 2,
            indirect: IndirectPredictorConfig::BtbOnly,
            ras_entries: 8,
            mispredict_penalty: 8,
            btb_miss_penalty: 2,
        }
    }
}

/// How the front-end was redirected by one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchResolution {
    /// Prediction fully correct: no front-end disturbance.
    Correct,
    /// Taken branch with the right direction/target but no BTB entry:
    /// short fetch bubble.
    BtbMiss,
    /// Wrong direction or wrong target: full flush.
    Mispredict,
}

/// Per-unit prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional/indirect/call/return branches seen.
    pub branches: u64,
    /// Full mispredicts.
    pub mispredicts: u64,
    /// Direction mispredicts (subset of `mispredicts`).
    pub direction_mispredicts: u64,
    /// Indirect-target mispredicts (subset of `mispredicts`).
    pub indirect_mispredicts: u64,
    /// Return-target mispredicts (subset of `mispredicts`).
    pub return_mispredicts: u64,
    /// Taken branches that missed the BTB.
    pub btb_misses: u64,
}

impl BranchStats {
    /// Mispredicts per kilo-branch (diagnostic).
    pub fn mpkb(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            1000.0 * self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The assembled branch prediction unit.
#[derive(Debug)]
pub struct BranchUnit {
    direction: Box<dyn DirectionPredictor>,
    btb: Btb,
    indirect: Option<PathHistoryPredictor>,
    ras: ReturnAddressStack,
    stats: BranchStats,
    /// Penalties, surfaced for the core models.
    pub mispredict_penalty: u64,
    /// Fetch-bubble cycles on a BTB miss.
    pub btb_miss_penalty: u64,
}

impl BranchUnit {
    /// Builds a branch unit from its configuration.
    pub fn new(cfg: &BranchConfig) -> BranchUnit {
        let direction: Box<dyn DirectionPredictor> = match cfg.direction {
            DirPredictorConfig::StaticTaken => Box::new(StaticPredictor::taken()),
            DirPredictorConfig::StaticNotTaken => Box::new(StaticPredictor::not_taken()),
            DirPredictorConfig::Bimodal { table_bits } => {
                Box::new(BimodalPredictor::new(table_bits))
            }
            DirPredictorConfig::Gshare {
                table_bits,
                history_bits,
            } => Box::new(GsharePredictor::new(table_bits, history_bits)),
            DirPredictorConfig::Tournament {
                table_bits,
                history_bits,
            } => Box::new(TournamentPredictor::new(table_bits, history_bits)),
        };
        let indirect = match cfg.indirect {
            IndirectPredictorConfig::BtbOnly => None,
            IndirectPredictorConfig::PathHistory {
                table_bits,
                history_bits,
            } => Some(PathHistoryPredictor::new(table_bits, history_bits)),
        };
        BranchUnit {
            direction,
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            indirect,
            ras: ReturnAddressStack::new(cfg.ras_entries),
            stats: BranchStats::default(),
            mispredict_penalty: cfg.mispredict_penalty,
            btb_miss_penalty: cfg.btb_miss_penalty,
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Predicts a dynamic branch, updates all structures with the actual
    /// outcome, and reports how the front-end was disturbed.
    ///
    /// Non-branch instructions are rejected.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `inst` is not a branch.
    pub fn resolve(&mut self, inst: &DynInst) -> BranchResolution {
        debug_assert!(inst.stat.is_branch(), "resolve() requires a branch");
        self.stats.branches += 1;
        let pc = inst.pc;
        let actual_taken = inst.taken;
        let actual_target = if actual_taken {
            inst.target
        } else {
            inst.fallthrough()
        };

        let mut resolution = BranchResolution::Correct;
        match inst.stat.class {
            InstClass::BranchCond => {
                let predicted_taken = self.direction.predict(pc);
                self.direction.update(pc, actual_taken);
                if predicted_taken != actual_taken {
                    self.stats.direction_mispredicts += 1;
                    resolution = BranchResolution::Mispredict;
                } else if actual_taken && self.btb.lookup(pc).is_none_or(|t| t != actual_target) {
                    resolution = BranchResolution::BtbMiss;
                }
            }
            InstClass::BranchUncond => {
                // Direction always known; only the target supply (BTB)
                // matters for the fetch stream.
                if self.btb.lookup(pc).is_none_or(|t| t != actual_target) {
                    resolution = BranchResolution::BtbMiss;
                }
            }
            InstClass::BranchCall => {
                self.ras.push(inst.fallthrough());
                // Direct calls behave like unconditional branches; indirect
                // calls (blr) predict through the indirect path.
                if inst.stat.opcode == racesim_isa::Opcode::Blr {
                    let predicted = self.predict_indirect(pc);
                    self.update_indirect(pc, actual_target);
                    if predicted != Some(actual_target) {
                        self.stats.indirect_mispredicts += 1;
                        resolution = BranchResolution::Mispredict;
                    }
                } else if self.btb.lookup(pc).is_none_or(|t| t != actual_target) {
                    resolution = BranchResolution::BtbMiss;
                }
            }
            InstClass::BranchRet => {
                let predicted = self.ras.pop();
                if predicted != Some(actual_target) {
                    self.stats.return_mispredicts += 1;
                    resolution = BranchResolution::Mispredict;
                }
            }
            InstClass::BranchIndirect => {
                let predicted = self.predict_indirect(pc);
                self.update_indirect(pc, actual_target);
                if predicted != Some(actual_target) {
                    self.stats.indirect_mispredicts += 1;
                    resolution = BranchResolution::Mispredict;
                }
            }
            _ => unreachable!("non-branch class"),
        }

        // Train the BTB with every taken branch.
        if actual_taken {
            if resolution == BranchResolution::BtbMiss {
                self.stats.btb_misses += 1;
            }
            self.btb.update(pc, actual_target);
        }
        if resolution == BranchResolution::Mispredict {
            self.stats.mispredicts += 1;
        }
        resolution
    }

    fn predict_indirect(&mut self, pc: u64) -> Option<u64> {
        match self.indirect.as_mut() {
            Some(p) => p.predict(pc),
            None => self.btb.lookup(pc),
        }
    }

    fn update_indirect(&mut self, pc: u64, target: u64) {
        if let Some(p) = self.indirect.as_mut() {
            p.update(pc, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_isa::{asm::Asm, Cond, Reg, StaticInst};

    fn branch_inst(class_src: &str, pc: u64, taken: bool, target: u64) -> DynInst {
        let mut a = Asm::new();
        let l = a.here();
        match class_src {
            "cond" => a.bcond(Cond::Ne, l),
            "uncond" => a.b(l),
            "indirect" => a.br(Reg::x(1)),
            "call" => a.bl(l),
            "icall" => a.blr(Reg::x(1)),
            "ret" => a.ret(),
            _ => unreachable!(),
        }
        let p = a.finish();
        let stat: StaticInst = racesim_decoder::Decoder::new().decode(p.code[0]).unwrap();
        DynInst {
            pc,
            stat,
            ea: 0,
            taken,
            target,
        }
    }

    fn unit(direction: DirPredictorConfig, indirect: IndirectPredictorConfig) -> BranchUnit {
        BranchUnit::new(&BranchConfig {
            direction,
            indirect,
            ..BranchConfig::default()
        })
    }

    #[test]
    fn biased_branches_become_predictable() {
        let mut u = unit(
            DirPredictorConfig::Bimodal { table_bits: 10 },
            IndirectPredictorConfig::BtbOnly,
        );
        let mut mis = 0;
        for _ in 0..100 {
            let i = branch_inst("cond", 0x1000, true, 0x2000);
            if u.resolve(&i) == BranchResolution::Mispredict {
                mis += 1;
            }
        }
        assert!(mis <= 2, "bimodal learns a always-taken branch: {mis}");
    }

    #[test]
    fn gshare_learns_alternating_patterns() {
        let mut bim = unit(
            DirPredictorConfig::Bimodal { table_bits: 10 },
            IndirectPredictorConfig::BtbOnly,
        );
        let mut gsh = unit(
            DirPredictorConfig::Gshare {
                table_bits: 10,
                history_bits: 8,
            },
            IndirectPredictorConfig::BtbOnly,
        );
        let mut mis_b = 0;
        let mut mis_g = 0;
        for k in 0..400u64 {
            let taken = k % 2 == 0;
            let i = branch_inst("cond", 0x1000, taken, 0x2000);
            if bim.resolve(&i) == BranchResolution::Mispredict {
                mis_b += 1;
            }
            if gsh.resolve(&i) == BranchResolution::Mispredict {
                mis_g += 1;
            }
        }
        assert!(
            mis_g * 4 < mis_b,
            "gshare ({mis_g}) should crush bimodal ({mis_b}) on T/NT patterns"
        );
    }

    #[test]
    fn returns_predicted_by_the_ras() {
        let mut u = unit(
            DirPredictorConfig::StaticTaken,
            IndirectPredictorConfig::BtbOnly,
        );
        // call from 0x1000 -> 0x8000, return to 0x1004.
        let call = branch_inst("call", 0x1000, true, 0x8000);
        assert_ne!(u.resolve(&call), BranchResolution::Mispredict);
        let ret = branch_inst("ret", 0x8000, true, 0x1004);
        assert_eq!(u.resolve(&ret), BranchResolution::Correct);
        assert_eq!(u.stats().return_mispredicts, 0);
    }

    #[test]
    fn deep_recursion_overflows_a_shallow_ras() {
        let mut u = BranchUnit::new(&BranchConfig {
            ras_entries: 2,
            direction: DirPredictorConfig::StaticTaken,
            ..BranchConfig::default()
        });
        // Three nested calls then three returns: the first return pops a
        // clobbered entry.
        for d in 0..3u64 {
            let call = branch_inst("call", 0x1000 + d * 4, true, 0x8000 + d * 0x100);
            u.resolve(&call);
        }
        let mut mis = 0;
        for d in (0..3u64).rev() {
            let ret = branch_inst("ret", 0x8000 + d * 0x100, true, 0x1004 + d * 4);
            if u.resolve(&ret) == BranchResolution::Mispredict {
                mis += 1;
            }
        }
        assert!(mis >= 1, "overflowed RAS must mispredict");
    }

    #[test]
    fn indirect_cycling_targets_need_path_history() {
        let targets = [0x2000u64, 0x3000, 0x4000, 0x5000];
        let run = |mut u: BranchUnit| {
            let mut mis = 0;
            for k in 0..400usize {
                let t = targets[k % targets.len()];
                let i = branch_inst("indirect", 0x1000, true, t);
                if u.resolve(&i) == BranchResolution::Mispredict {
                    mis += 1;
                }
            }
            mis
        };
        let mis_btb = run(unit(
            DirPredictorConfig::StaticTaken,
            IndirectPredictorConfig::BtbOnly,
        ));
        let mis_path = run(unit(
            DirPredictorConfig::StaticTaken,
            IndirectPredictorConfig::PathHistory {
                table_bits: 10,
                history_bits: 8,
            },
        ));
        assert!(
            mis_path * 4 < mis_btb,
            "path history ({mis_path}) should beat BTB-only ({mis_btb})"
        );
    }

    #[test]
    fn btb_miss_is_reported_once_then_learned() {
        let mut u = unit(
            DirPredictorConfig::StaticTaken,
            IndirectPredictorConfig::BtbOnly,
        );
        let i = branch_inst("uncond", 0x1000, true, 0x9000);
        assert_eq!(u.resolve(&i), BranchResolution::BtbMiss);
        assert_eq!(u.resolve(&i), BranchResolution::Correct);
        assert_eq!(u.stats().btb_misses, 1);
    }

    #[test]
    fn stats_aggregate() {
        let mut u = unit(
            DirPredictorConfig::StaticNotTaken,
            IndirectPredictorConfig::BtbOnly,
        );
        for _ in 0..10 {
            let i = branch_inst("cond", 0x1000, true, 0x2000);
            u.resolve(&i);
        }
        let s = u.stats();
        assert_eq!(s.branches, 10);
        assert_eq!(s.mispredicts, 10, "static not-taken always wrong here");
        assert!(s.mpkb() > 999.0);
    }
}
