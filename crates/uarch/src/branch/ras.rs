//! Return address stack.

/// A fixed-depth circular return-address stack.
///
/// Overflow silently wraps (clobbering the oldest entry) and underflow
/// returns `None`, matching real hardware behaviour on deep recursion —
/// which is exactly what the `CRd` micro-benchmark stresses.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given capacity (0 disables it: every pop
    /// returns `None`).
    pub fn new(capacity: u32) -> ReturnAddressStack {
        ReturnAddressStack {
            entries: vec![0; capacity.max(1) as usize],
            top: 0,
            depth: 0,
            capacity: capacity as usize,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        if self.capacity == 0 {
            return;
        }
        self.top = (self.top + 1) % self.capacity;
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.capacity);
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        if self.capacity == 0 || self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.depth -= 1;
        Some(addr)
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_clobbers_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // clobbers 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        // Depth exhausted; the clobbered "1" is unrecoverable.
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn zero_capacity_predicts_nothing() {
        let mut r = ReturnAddressStack::new(0);
        r.push(7);
        assert_eq!(r.pop(), None);
        assert_eq!(r.depth(), 0);
    }
}
