//! Core configuration.

use crate::branch::BranchConfig;
use crate::latency::LatencyTable;
use serde::{Deserialize, Serialize};

/// Which pipeline organisation a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// In-order, dual-issue (Cortex-A53-like).
    InOrder,
    /// Out-of-order (Cortex-A72-like).
    OutOfOrder,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoreKind::InOrder => "in-order",
            CoreKind::OutOfOrder => "out-of-order",
        })
    }
}

/// Front-end (fetch/decode) configuration, shared by both core kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontendConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u8,
    /// Front-end pipeline depth in cycles (fetch → issue/dispatch); sets
    /// the floor of the branch-misprediction refill time together with
    /// [`BranchConfig::mispredict_penalty`](crate::branch::BranchConfig).
    pub depth: u8,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            fetch_width: 2,
            depth: 3,
        }
    }
}

/// Parameters specific to the in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InOrderParams {
    /// Issue width (the A53 dual-issues).
    pub issue_width: u8,
    /// Number of simple integer ALU pipes.
    pub int_alu_units: u8,
    /// Number of FP/SIMD pipes.
    pub fp_units: u8,
    /// Whether the integer divider blocks its unit for the full latency.
    pub div_blocking: bool,
    /// Store-buffer entries (stores drain to the hierarchy in program
    /// order; a full buffer stalls issue).
    pub store_buffer: u8,
    /// Maximum memory operations issued per cycle (the A53 LSU accepts
    /// one).
    pub mem_per_cycle: u8,
}

impl Default for InOrderParams {
    fn default() -> InOrderParams {
        InOrderParams {
            issue_width: 2,
            int_alu_units: 2,
            fp_units: 1,
            div_blocking: true,
            store_buffer: 4,
            mem_per_cycle: 1,
        }
    }
}

/// Issue-port counts of the out-of-order engine.
///
/// The Cortex-A72 issues into eight pipelines: two simple-ALU, one
/// multi-cycle integer, two FP/SIMD, one branch, one load and one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounts {
    /// Simple integer ALU ports.
    pub int_alu: u8,
    /// Multi-cycle integer (multiply/divide) ports.
    pub int_mul: u8,
    /// FP/SIMD ports.
    pub fp: u8,
    /// Load ports.
    pub load: u8,
    /// Store ports.
    pub store: u8,
    /// Branch ports.
    pub branch: u8,
}

impl Default for PortCounts {
    fn default() -> PortCounts {
        PortCounts {
            int_alu: 2,
            int_mul: 1,
            fp: 2,
            load: 1,
            store: 1,
            branch: 1,
        }
    }
}

/// Parameters specific to the out-of-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OooParams {
    /// Instructions renamed/dispatched per cycle (A72: 3).
    pub dispatch_width: u8,
    /// Reorder-buffer entries (A72: 128).
    pub rob_entries: u16,
    /// Unified issue-queue capacity.
    pub iq_entries: u16,
    /// Load-queue entries.
    pub lq_entries: u16,
    /// Store-queue entries.
    pub sq_entries: u16,
    /// Instructions retired per cycle.
    pub retire_width: u8,
    /// Issue ports.
    pub ports: PortCounts,
    /// Store-to-load forwarding latency, in cycles.
    pub stlf_latency: u64,
    /// Whether the integer divider blocks its port.
    pub div_blocking: bool,
}

impl Default for OooParams {
    fn default() -> OooParams {
        OooParams {
            dispatch_width: 3,
            rob_entries: 128,
            iq_entries: 48,
            lq_entries: 16,
            sq_entries: 16,
            retire_width: 3,
            ports: PortCounts::default(),
            stlf_latency: 4,
            div_blocking: true,
        }
    }
}

/// Complete configuration of one core's timing model.
///
/// This is the object the validation methodology manipulates: public
/// information fills some fields (step 1), lmbench-style probes fill cache
/// latencies (step 2, in the companion `HierarchyConfig`), and iterated
/// racing searches the rest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Pipeline organisation.
    pub kind: CoreKind,
    /// Core clock, in GHz (used only for reporting; timing is in cycles).
    pub frequency_ghz: f64,
    /// Front-end configuration.
    pub frontend: FrontendConfig,
    /// Branch unit configuration.
    pub branch: BranchConfig,
    /// Execution latencies.
    pub lat: LatencyTable,
    /// In-order engine parameters (used when `kind` is `InOrder`).
    pub inorder: InOrderParams,
    /// Out-of-order engine parameters (used when `kind` is `OutOfOrder`).
    pub ooo: OooParams,
}

impl CoreConfig {
    /// An in-order core with A53-flavoured defaults.
    pub fn in_order_default() -> CoreConfig {
        CoreConfig {
            kind: CoreKind::InOrder,
            frequency_ghz: 1.51,
            frontend: FrontendConfig::default(),
            branch: BranchConfig::default(),
            lat: LatencyTable::a53_like(),
            inorder: InOrderParams::default(),
            ooo: OooParams::default(),
        }
    }

    /// An out-of-order core with A72-flavoured defaults.
    pub fn out_of_order_default() -> CoreConfig {
        CoreConfig {
            kind: CoreKind::OutOfOrder,
            frequency_ghz: 1.99,
            frontend: FrontendConfig {
                fetch_width: 3,
                depth: 5,
            },
            branch: BranchConfig {
                mispredict_penalty: 12,
                ..BranchConfig::default()
            },
            lat: LatencyTable::a72_like(),
            inorder: InOrderParams::default(),
            ooo: OooParams::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_plausible() {
        let io = CoreConfig::in_order_default();
        assert_eq!(io.kind, CoreKind::InOrder);
        assert_eq!(io.inorder.issue_width, 2);
        let ooo = CoreConfig::out_of_order_default();
        assert_eq!(ooo.kind, CoreKind::OutOfOrder);
        assert!(ooo.ooo.rob_entries >= 64);
        assert!(ooo.branch.mispredict_penalty > io.branch.mispredict_penalty);
    }

    #[test]
    fn kind_displays() {
        assert_eq!(CoreKind::InOrder.to_string(), "in-order");
        assert_eq!(CoreKind::OutOfOrder.to_string(), "out-of-order");
    }
}
