//! The common interface of core timing models.

use crate::stats::CoreStats;
use racesim_isa::DynInst;
use racesim_mem::MemoryHierarchy;

/// A streaming core timing model.
///
/// Implementations consume the dynamic instruction stream one instruction
/// at a time, issuing instruction-fetch and data requests to the memory
/// hierarchy, and accumulate cycle-accurate statistics. After the last
/// instruction, call [`CoreModel::finish`] to drain in-flight state.
pub trait CoreModel: std::fmt::Debug + Send {
    /// Times one dynamic instruction.
    fn consume(&mut self, inst: &DynInst, mem: &mut MemoryHierarchy);

    /// Drains in-flight instructions (stores, the retire window) and
    /// finalises the cycle count.
    fn finish(&mut self, mem: &mut MemoryHierarchy);

    /// Statistics accumulated so far ([`CoreModel::finish`] must have been
    /// called for the final cycle count to be exact).
    fn stats(&self) -> CoreStats;

    /// Enables (or disables) per-phase stall-cycle accounting. Off by
    /// default; when off, [`CoreModel::phase_cycles`] returns nothing
    /// and the timing loop pays at most one extra branch per
    /// instruction. The default implementation ignores the request, so
    /// models without accounting stay zero-cost.
    fn set_phase_accounting(&mut self, _on: bool) {}

    /// Simulated cycles attributed to each stall/latency phase since
    /// construction, as `(phase name, cycles)` pairs. These are
    /// *attribution weights* for the self-profiler, not a partition of
    /// the cycle count: overlapping stalls can be counted under more
    /// than one phase. Empty when accounting is off or unsupported.
    fn phase_cycles(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}
