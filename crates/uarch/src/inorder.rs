//! In-order, dual-issue core timing model (Cortex-A53-like).
//!
//! The model walks the dynamic instruction stream once, maintaining a
//! register scoreboard, per-cycle issue-slot bookkeeping (the contention
//! model: "the contention model verifies that instructions issued in the
//! same cycle are compatible, or can be dual-issued" — paper, Section
//! IV-A), blocking functional units, a store buffer and the branch unit.
//! Every instruction costs O(1) work, yet stalls from dependences,
//! structural hazards, cache misses and branch mispredictions are
//! accounted cycle-accurately.

use crate::branch::{BranchResolution, BranchUnit};
use crate::config::CoreConfig;
use crate::core_model::CoreModel;
use crate::latency::LatencyTable;
use crate::stats::CoreStats;
use racesim_isa::{DynInst, InstClass, Reg};
use racesim_mem::{MemOp, MemoryHierarchy};
use std::collections::VecDeque;

/// Implicit fetch-queue depth decoupling fetch from issue.
const FETCH_QUEUE: u64 = 8;

#[derive(Debug, Default, Clone, Copy)]
struct IssueSlots {
    cycle: u64,
    total: u8,
    mem: u8,
    branch: u8,
    mul_div: u8,
    fp: u8,
    alu: u8,
}

/// Per-cause stall-cycle attribution for the self-profiler (see
/// [`CoreModel::phase_cycles`]). Only accumulated when accounting is
/// switched on.
#[derive(Debug, Default, Clone, Copy)]
struct InOrderPhases {
    frontend: u64,
    deps: u64,
    store_buffer: u64,
    issue: u64,
    mem: u64,
    branch: u64,
}

/// The in-order core model.
#[derive(Debug)]
pub struct InOrderCore {
    // Static configuration.
    lat: LatencyTable,
    issue_width: u8,
    int_alu_units: u8,
    fp_units: u8,
    div_blocking: bool,
    store_buffer_cap: usize,
    mem_per_cycle: u8,
    fetch_width: u8,
    frontend_depth: u64,

    branch_unit: BranchUnit,

    // Dynamic state.
    reg_ready: [u64; Reg::COUNT],
    fetch_cycle: u64,
    fetch_bw_cycle: u64,
    fetch_bw_count: u8,
    cur_line: u64,
    line_ready: u64,
    last_issue: u64,
    slots: IssueSlots,
    int_div_free: u64,
    fp_div_free: u64,
    store_buffer: VecDeque<u64>,
    store_drain: u64,

    stats: CoreStats,
    phase_acct: bool,
    phases: InOrderPhases,
}

impl InOrderCore {
    /// Builds the model from a core configuration (the `inorder`,
    /// `frontend`, `branch` and `lat` sections are used).
    pub fn new(cfg: &CoreConfig) -> InOrderCore {
        InOrderCore {
            lat: cfg.lat,
            issue_width: cfg.inorder.issue_width.max(1),
            int_alu_units: cfg.inorder.int_alu_units.max(1),
            fp_units: cfg.inorder.fp_units.max(1),
            div_blocking: cfg.inorder.div_blocking,
            store_buffer_cap: cfg.inorder.store_buffer.max(1) as usize,
            mem_per_cycle: cfg.inorder.mem_per_cycle.max(1),
            fetch_width: cfg.frontend.fetch_width.max(1),
            frontend_depth: cfg.frontend.depth as u64,
            branch_unit: BranchUnit::new(&cfg.branch),
            reg_ready: [0; Reg::COUNT],
            fetch_cycle: 0,
            fetch_bw_cycle: 0,
            fetch_bw_count: 0,
            cur_line: u64::MAX,
            line_ready: 0,
            last_issue: 0,
            slots: IssueSlots::default(),
            int_div_free: 0,
            fp_div_free: 0,
            store_buffer: VecDeque::new(),
            store_drain: 0,
            stats: CoreStats::default(),
            phase_acct: false,
            phases: InOrderPhases::default(),
        }
    }

    /// Determines the cycle the instruction leaves the front-end.
    fn fetch(&mut self, pc: u64, mem: &mut MemoryHierarchy) -> u64 {
        let shift = mem.l1i_line_bytes().trailing_zeros();
        let line = pc >> shift;
        if line != self.cur_line {
            let r = mem.access(MemOp::IFetch, pc, pc, self.fetch_cycle);
            // Hits are hidden by the pipelined front-end; only the excess
            // over the hit latency stalls fetch.
            let extra = r.latency.saturating_sub(mem.l1i_hit_latency());
            self.line_ready = self.fetch_cycle + extra;
            self.cur_line = line;
        }
        let mut f = self.fetch_cycle.max(self.line_ready);
        // Back-pressure: fetch cannot run more than the fetch queue ahead
        // of issue.
        f = f.max(self.last_issue.saturating_sub(FETCH_QUEUE));
        // Fetch bandwidth.
        if f == self.fetch_bw_cycle && self.fetch_bw_count >= self.fetch_width {
            f += 1;
        }
        if f != self.fetch_bw_cycle {
            self.fetch_bw_cycle = f;
            self.fetch_bw_count = 0;
        }
        self.fetch_bw_count += 1;
        self.fetch_cycle = f;
        f
    }

    /// Finds the first cycle at or after `earliest` with a compatible
    /// issue slot, and occupies it.
    fn take_slot(&mut self, earliest: u64, class: InstClass) -> u64 {
        let mut c = earliest;
        loop {
            if self.slots.cycle != c {
                self.slots = IssueSlots {
                    cycle: c,
                    ..IssueSlots::default()
                };
            }
            let s = &self.slots;
            let mut ok = s.total < self.issue_width;
            match class {
                InstClass::Load | InstClass::Store => ok &= s.mem < self.mem_per_cycle,
                k if k.is_branch() => ok &= s.branch < 1,
                InstClass::IntMul | InstClass::IntDiv => {
                    ok &= s.mul_div < 1;
                    if class == InstClass::IntDiv && self.div_blocking {
                        ok &= c >= self.int_div_free;
                    }
                }
                k if k.is_fp_or_simd() => {
                    ok &= s.fp < self.fp_units;
                    if matches!(class, InstClass::FpDiv | InstClass::FpSqrt) && self.div_blocking {
                        ok &= c >= self.fp_div_free;
                    }
                }
                InstClass::IntAlu => ok &= s.alu < self.int_alu_units,
                _ => {}
            }
            if ok {
                let s = &mut self.slots;
                s.total += 1;
                match class {
                    InstClass::Load | InstClass::Store => s.mem += 1,
                    k if k.is_branch() => s.branch += 1,
                    InstClass::IntMul | InstClass::IntDiv => s.mul_div += 1,
                    k if k.is_fp_or_simd() => s.fp += 1,
                    InstClass::IntAlu => s.alu += 1,
                    _ => {}
                }
                return c;
            }
            c = (c + 1).max(if class == InstClass::IntDiv && self.div_blocking {
                self.int_div_free
            } else {
                0
            });
        }
    }

    fn drain_store_buffer(&mut self, upto: u64) {
        while let Some(&front) = self.store_buffer.front() {
            if front <= upto {
                self.store_buffer.pop_front();
            } else {
                break;
            }
        }
    }
}

impl CoreModel for InOrderCore {
    fn consume(&mut self, inst: &DynInst, mem: &mut MemoryHierarchy) {
        let class = inst.stat.class;
        if class == InstClass::Halt {
            return;
        }
        self.stats.instructions += 1;

        let prev_issue = self.last_issue;
        let f = self.fetch(inst.pc, mem);
        let mut earliest = (f + self.frontend_depth).max(self.last_issue);
        let after_frontend = earliest;

        // Register dependences.
        for &src in inst.stat.sources() {
            earliest = earliest.max(self.reg_ready[src.index()]);
        }
        let after_deps = earliest;

        // A full store buffer stalls the next store until its head drains;
        // barriers wait for it to empty.
        if class == InstClass::Store {
            self.drain_store_buffer(earliest);
            if self.store_buffer.len() >= self.store_buffer_cap {
                earliest = earliest.max(*self.store_buffer.front().expect("full buffer"));
                self.drain_store_buffer(earliest);
            }
        } else if class == InstClass::Barrier {
            if let Some(&last) = self.store_buffer.back() {
                earliest = earliest.max(last);
            }
            self.store_buffer.clear();
        }

        let after_store = earliest;
        let issue = self.take_slot(earliest, class);
        self.last_issue = issue;
        if self.phase_acct {
            // Each max() above only ever pushes the issue point later,
            // so consecutive differences attribute the push per cause.
            self.phases.frontend += after_frontend - prev_issue;
            self.phases.deps += after_deps - after_frontend;
            self.phases.store_buffer += after_store - after_deps;
            self.phases.issue += issue - after_store;
        }

        // Execute.
        let complete = match class {
            InstClass::Load => {
                self.stats.loads += 1;
                let r = mem.access(MemOp::Load, inst.ea, inst.pc, issue);
                r.ready_at(issue)
            }
            InstClass::Store => {
                self.stats.stores += 1;
                // The store retires immediately into the store buffer; the
                // buffer drains to the hierarchy in order, pipelined one
                // per cycle.
                let drain = self.store_drain.max(issue + 1);
                let r = mem.access(MemOp::Store, inst.ea, inst.pc, drain);
                self.store_drain = drain + 1;
                self.store_buffer.push_back(r.ready_at(drain));
                issue + 1
            }
            c if c.is_branch() => {
                let resolve = issue + self.lat.of(c);
                match self.branch_unit.resolve(inst) {
                    BranchResolution::Mispredict => {
                        self.fetch_cycle = resolve + self.branch_unit.mispredict_penalty;
                        self.cur_line = u64::MAX; // refetch after the flush
                        if self.phase_acct {
                            self.phases.branch += self.branch_unit.mispredict_penalty;
                        }
                    }
                    BranchResolution::BtbMiss => {
                        self.fetch_cycle = self
                            .fetch_cycle
                            .max(f + 1 + self.branch_unit.btb_miss_penalty);
                    }
                    BranchResolution::Correct => {}
                }
                resolve
            }
            other => issue + self.lat.of(other),
        };

        // Blocking dividers hold their unit.
        if self.div_blocking {
            if class == InstClass::IntDiv {
                self.int_div_free = complete;
            } else if matches!(class, InstClass::FpDiv | InstClass::FpSqrt) {
                self.fp_div_free = complete;
            }
        }

        if self.phase_acct && class == InstClass::Load {
            // Load-to-use latency (the dependent-consumer view of the
            // memory system).
            self.phases.mem += complete - issue;
        }

        for &dst in inst.stat.dests() {
            self.reg_ready[dst.index()] = complete;
        }
        self.stats.cycles = self.stats.cycles.max(complete);
    }

    fn finish(&mut self, _mem: &mut MemoryHierarchy) {
        if let Some(&last) = self.store_buffer.back() {
            self.stats.cycles = self.stats.cycles.max(last);
        }
        self.store_buffer.clear();
        self.stats.branch = self.branch_unit.stats();
    }

    fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.branch = self.branch_unit.stats();
        s
    }

    fn set_phase_accounting(&mut self, on: bool) {
        self.phase_acct = on;
    }

    fn phase_cycles(&self) -> Vec<(&'static str, u64)> {
        if !self.phase_acct {
            return Vec::new();
        }
        let p = &self.phases;
        vec![
            ("frontend", p.frontend),
            ("deps", p.deps),
            ("store_buffer", p.store_buffer),
            ("issue", p.issue),
            ("mem", p.mem),
            ("branch", p.branch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_decoder::Decoder;
    use racesim_isa::asm::Asm;
    use racesim_mem::HierarchyConfig;

    /// Assembles, then turns each instruction into a `DynInst` with the
    /// given dynamic info (sequential pcs, no memory/branches unless set).
    fn dyns(f: impl FnOnce(&mut Asm)) -> Vec<DynInst> {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.finish();
        let d = Decoder::new();
        p.code
            .iter()
            .enumerate()
            .map(|(i, w)| DynInst {
                pc: p.pc_of(i),
                stat: d.decode(*w).unwrap(),
                ea: 0,
                taken: false,
                target: 0,
            })
            .collect()
    }

    /// Runs with a pre-warmed instruction footprint, so tests measure the
    /// back-end effect under study rather than cold I-cache misses.
    fn run(insts: &[DynInst]) -> (CoreStats, MemoryHierarchy) {
        let mut core = InOrderCore::new(&CoreConfig::in_order_default());
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in insts {
            mem.prefill_code(i.pc);
        }
        for i in insts {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        (core.stats(), mem)
    }

    /// Runs fully cold (for the I-cache test).
    fn run_cold(insts: &[DynInst]) -> (CoreStats, MemoryHierarchy) {
        let mut core = InOrderCore::new(&CoreConfig::in_order_default());
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in insts {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        (core.stats(), mem)
    }

    #[test]
    fn independent_alu_ops_dual_issue() {
        // 100 independent adds: with dual issue, ~0.5 CPI steady state.
        let insts = dyns(|a| {
            for i in 0..100u8 {
                a.addi(Reg::x(i % 20), Reg::XZR, 1);
            }
        });
        let (s, _) = run(&insts);
        assert!(s.cpi() < 0.8, "dual issue should be near 0.5: {}", s.cpi());
    }

    #[test]
    fn dependent_chain_serialises() {
        // x0 += 1 chain: 1 op/cycle minimum.
        let insts = dyns(|a| {
            for _ in 0..100 {
                a.addi(Reg::x(0), Reg::x(0), 1);
            }
        });
        let (s, _) = run(&insts);
        assert!(s.cpi() >= 0.99, "serial chain is >= 1 CPI: {}", s.cpi());
        assert!(s.cpi() < 1.3);
    }

    #[test]
    fn divides_are_slow_and_block() {
        let insts = dyns(|a| {
            a.movz(Reg::x(1), 1000);
            a.movz(Reg::x(2), 3);
            for _ in 0..20 {
                a.udiv(Reg::x(3), Reg::x(1), Reg::x(2)); // independent divs
            }
        });
        let (s, _) = run(&insts);
        // Each div blocks the divider for its ~12-cycle latency.
        assert!(s.cpi() > 8.0, "blocking divider: {}", s.cpi());
    }

    #[test]
    fn fp_chain_pays_fp_latency() {
        let insts = dyns(|a| {
            for _ in 0..50 {
                a.fadd(Reg::v(0), Reg::v(0), Reg::v(1));
            }
        });
        let (s, _) = run(&insts);
        // fp_add latency is 4 in the A53 table.
        assert!(s.cpi() > 3.5, "fp chain CPI: {}", s.cpi());
    }

    #[test]
    fn load_misses_dominate_dependent_loads() {
        // Pointer-chase-like: each load depends on the previous (through
        // x1) and strides far apart so every access misses.
        let mut insts = dyns(|a| {
            for _ in 0..50 {
                a.ldr8(Reg::x(1), Reg::x(1), 0);
            }
        });
        for (k, i) in insts.iter_mut().enumerate() {
            i.ea = 0x10_0000 + (k as u64) * 8192;
        }
        let (s, mem) = run(&insts);
        assert!(s.cpi() > 100.0, "DRAM-bound chase: {}", s.cpi());
        assert!(mem.stats().l1d.misses >= 49);
    }

    #[test]
    fn l1_hits_are_cheap_for_independent_loads() {
        let mut insts = dyns(|a| {
            for i in 0..64u8 {
                a.ldr8(Reg::x(2 + (i % 8)), Reg::x(1), 0);
            }
        });
        for i in insts.iter_mut() {
            i.ea = 0x9000; // same line: hits after the first
        }
        let (s, _) = run(&insts);
        assert!(s.cpi() < 3.0, "independent hitting loads: {}", s.cpi());
    }

    #[test]
    fn mispredicted_branches_cost_the_flush() {
        // One static branch executed 200 times (as in a loop), either
        // always not-taken (learnable) or pseudo-randomly taken
        // (mispredicted about half the time by any predictor).
        let mk = |random: bool| {
            let body = dyns(|a| {
                a.cmpi(Reg::x(1), 0);
                let l = a.here();
                a.bcond(racesim_isa::Cond::Ne, l);
            });
            let mut insts = Vec::new();
            let mut lfsr = 0xACE1u32;
            for _ in 0..200 {
                let mut cmp = body[0];
                let mut br = body[1];
                lfsr = lfsr.wrapping_mul(1103515245).wrapping_add(12345);
                br.taken = random && (lfsr >> 16) & 1 == 1;
                br.target = br.fallthrough();
                cmp.ea = 0;
                insts.push(cmp);
                insts.push(br);
            }
            insts
        };
        let (s_easy, _) = run(&mk(false));
        let (s_hard, _) = run(&mk(true));
        assert!(
            s_hard.cpi() > s_easy.cpi() + 0.5,
            "mispredicts must hurt: easy {} vs hard {}",
            s_easy.cpi(),
            s_hard.cpi()
        );
        assert!(s_hard.branch.mispredicts > 50);
    }

    #[test]
    fn store_bursts_fill_the_buffer() {
        let mut insts = dyns(|a| {
            for _ in 0..64 {
                a.str8(Reg::x(1), Reg::x(2), 0);
            }
        });
        // Strided misses so each store drain is slow.
        for (k, i) in insts.iter_mut().enumerate() {
            i.ea = 0x40_0000 + (k as u64) * 4096;
        }
        let (s, _) = run(&insts);
        assert!(
            s.cpi() > 5.0,
            "store buffer backpressure on missing stores: {}",
            s.cpi()
        );
        assert_eq!(s.stores, 64);
    }

    #[test]
    fn barrier_waits_for_stores() {
        let mut insts = dyns(|a| {
            a.str8(Reg::x(1), Reg::x(2), 0);
            a.dsb();
            a.addi(Reg::x(3), Reg::XZR, 1);
        });
        insts[0].ea = 0x80_0000; // miss: slow drain
        let (s, _) = run(&insts);
        assert!(s.cycles > 100, "dsb drains the missing store: {}", s.cycles);
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Straight-line code spanning many lines, executed once: every
        // line is a cold I$ miss.
        let insts = dyns(|a| {
            for _ in 0..512 {
                a.nop();
            }
        });
        let (s, mem) = run_cold(&insts);
        assert!(mem.stats().l1i.misses >= 31, "{:?}", mem.stats().l1i);
        assert!(s.cpi() > 2.0, "cold icache hurts: {}", s.cpi());
    }

    #[test]
    fn phase_accounting_attributes_stalls() {
        // Off by default: no phases reported.
        let core = InOrderCore::new(&CoreConfig::in_order_default());
        assert!(core.phase_cycles().is_empty());

        // A serial dependence chain books cycles under "deps".
        let chain = dyns(|a| {
            for _ in 0..100 {
                a.addi(Reg::x(0), Reg::x(0), 1);
            }
        });
        let mut core = InOrderCore::new(&CoreConfig::in_order_default());
        core.set_phase_accounting(true);
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in &chain {
            mem.prefill_code(i.pc);
        }
        for i in &chain {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        let phases = core.phase_cycles();
        let get = |n: &str| phases.iter().find(|(k, _)| *k == n).map(|(_, v)| *v);
        assert!(get("deps").unwrap() > 0, "{phases:?}");

        // A pointer chase books cycles under "mem".
        let mut loads = dyns(|a| {
            for _ in 0..50 {
                a.ldr8(Reg::x(1), Reg::x(1), 0);
            }
        });
        for (k, i) in loads.iter_mut().enumerate() {
            i.ea = 0x10_0000 + (k as u64) * 8192;
        }
        let mut core = InOrderCore::new(&CoreConfig::in_order_default());
        core.set_phase_accounting(true);
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in &loads {
            mem.prefill_code(i.pc);
        }
        for i in &loads {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        let phases = core.phase_cycles();
        let mem_cycles = phases.iter().find(|(k, _)| *k == "mem").unwrap().1;
        let deps = phases.iter().find(|(k, _)| *k == "deps").unwrap().1;
        assert!(
            mem_cycles > 100 && deps > 100,
            "chase is memory- and dependence-bound: {phases:?}"
        );
    }

    #[test]
    fn phase_accounting_does_not_change_timing() {
        let insts = dyns(|a| {
            for i in 0..200u8 {
                a.addi(Reg::x(i % 20), Reg::x((i + 1) % 20), 1);
            }
        });
        let (plain, _) = run(&insts);
        let mut core = InOrderCore::new(&CoreConfig::in_order_default());
        core.set_phase_accounting(true);
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in &insts {
            mem.prefill_code(i.pc);
        }
        for i in &insts {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        assert_eq!(core.stats(), plain, "accounting must be observation-only");
    }

    #[test]
    fn halt_is_ignored() {
        let insts = dyns(|a| {
            a.nop();
            a.halt();
        });
        let (s, _) = run(&insts);
        assert_eq!(s.instructions, 1);
    }
}
