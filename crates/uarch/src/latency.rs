//! Execution latencies per timing class.

use racesim_isa::InstClass;
use serde::{Deserialize, Serialize};

/// Execution latency, in cycles, for every instruction class.
///
/// These are precisely the "timing … of the arithmetic instruction
/// execution units" the paper tunes when the FP/data-parallel
/// micro-benchmarks expose modelling errors. Memory latencies live in the
/// cache configs; branch resolution latency lives in the branch config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Simple integer ALU ops.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide (also the blocking time when divides are unpipelined).
    pub int_div: u64,
    /// Scalar FP add/sub.
    pub fp_add: u64,
    /// Scalar FP multiply.
    pub fp_mul: u64,
    /// Scalar FP divide.
    pub fp_div: u64,
    /// Scalar FP square root.
    pub fp_sqrt: u64,
    /// Int ↔ FP conversions.
    pub fp_cvt: u64,
    /// FP/SIMD register moves.
    pub fp_mov: u64,
    /// SIMD integer ALU.
    pub simd_alu: u64,
    /// SIMD integer multiply.
    pub simd_mul: u64,
    /// SIMD FP add.
    pub simd_fp_add: u64,
    /// SIMD FP multiply.
    pub simd_fp_mul: u64,
    /// SIMD fused multiply-add.
    pub simd_fma: u64,
}

impl LatencyTable {
    /// Latencies approximating the Cortex-A53 (from its software
    /// optimisation guidance and the TRM).
    pub fn a53_like() -> LatencyTable {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 12,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 22,
            fp_sqrt: 22,
            fp_cvt: 4,
            fp_mov: 2,
            simd_alu: 2,
            simd_mul: 4,
            simd_fp_add: 4,
            simd_fp_mul: 4,
            simd_fma: 8,
        }
    }

    /// Latencies approximating the Cortex-A72.
    pub fn a72_like() -> LatencyTable {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 10,
            fp_add: 3,
            fp_mul: 3,
            fp_div: 17,
            fp_sqrt: 17,
            fp_cvt: 3,
            fp_mov: 1,
            simd_alu: 2,
            simd_mul: 4,
            simd_fp_add: 3,
            simd_fp_mul: 3,
            simd_fma: 7,
        }
    }

    /// The execution latency for a class.
    ///
    /// Memory classes return 0 (their latency comes from the hierarchy);
    /// branches resolve in 1 cycle; nops/barriers take a cycle to pass the
    /// pipe.
    pub fn of(&self, class: InstClass) -> u64 {
        use InstClass::*;
        match class {
            IntAlu => self.int_alu,
            IntMul => self.int_mul,
            IntDiv => self.int_div,
            FpAdd => self.fp_add,
            FpMul => self.fp_mul,
            FpDiv => self.fp_div,
            FpSqrt => self.fp_sqrt,
            FpCvt => self.fp_cvt,
            FpMov => self.fp_mov,
            SimdAlu => self.simd_alu,
            SimdMul => self.simd_mul,
            SimdFpAdd => self.simd_fp_add,
            SimdFpMul => self.simd_fp_mul,
            SimdFma => self.simd_fma,
            Load | Store => 0,
            BranchCond | BranchUncond | BranchIndirect | BranchCall | BranchRet => 1,
            Barrier | Nop | Halt => 1,
        }
    }
}

impl Default for LatencyTable {
    fn default() -> LatencyTable {
        LatencyTable::a53_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_covers_every_class() {
        let t = LatencyTable::a53_like();
        for c in InstClass::ALL {
            // No class may have an absurd latency; memory classes are 0.
            let l = t.of(c);
            if c.is_memory() {
                assert_eq!(l, 0, "{c}");
            } else {
                assert!((1..=64).contains(&l), "{c}: {l}");
            }
        }
    }

    #[test]
    fn a72_is_generally_faster_on_fp() {
        let a53 = LatencyTable::a53_like();
        let a72 = LatencyTable::a72_like();
        assert!(a72.fp_add < a53.fp_add);
        assert!(a72.fp_div < a53.fp_div);
    }
}
