//! # racesim-uarch
//!
//! Core timing models: the project's equivalent of the "novel timing
//! contention models for in-order and out-of-order ARM cores" the paper
//! adds to Sniper (Section IV).
//!
//! The crate provides:
//!
//! * a configurable **branch prediction unit** ([`branch`]): static,
//!   bimodal, gshare and tournament direction predictors, a BTB, a
//!   return-address stack, and optional path-history **indirect branch
//!   prediction** (the component the paper adds after micro-benchmark
//!   `CS1` exposed its absence);
//! * per-class **execution latencies** ([`LatencyTable`]) and functional
//!   unit/issue **contention** rules;
//! * an **in-order, dual-issue core model** ([`InOrderCore`]) patterned
//!   after the Cortex-A53;
//! * an **out-of-order core model** ([`OooCore`]) patterned after the
//!   Cortex-A72: dispatch width, ROB, issue queue, per-port functional
//!   units, load/store queues and store-to-load forwarding.
//!
//! Both models are *streaming*: they consume one decoded dynamic
//! instruction at a time (O(1) work each) and track cycle-accurate
//! resource and dependence constraints, in the spirit of Sniper's
//! high-abstraction "interval" core models — cycle-level accounting
//! without cycle-by-cycle iteration.
//!
//! Everything structural hangs off [`CoreConfig`], which is what the
//! racing tuner mutates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
mod config;
mod core_model;
mod inorder;
mod latency;
mod ooo;
mod stats;

pub use config::{CoreConfig, CoreKind, FrontendConfig, InOrderParams, OooParams, PortCounts};
pub use core_model::CoreModel;
pub use inorder::InOrderCore;
pub use latency::LatencyTable;
pub use ooo::OooCore;
pub use stats::CoreStats;
