//! Out-of-order core timing model (Cortex-A72-like).
//!
//! A streaming, dependence-graph model in the spirit of Sniper's
//! instruction-window-centric core model: each dynamic instruction is
//! processed once, computing its dispatch, issue, completion and retire
//! cycles under the structural constraints of the machine — dispatch
//! width, ROB and issue-queue occupancy, per-port functional units,
//! load/store queues, in-order retire — and the dependence constraints of
//! the register scoreboard and store-to-load forwarding. Memory-level
//! parallelism across cache misses emerges naturally: independent loads
//! issue at nearby cycles and their latencies overlap, bounded by the
//! hierarchy's MSHRs.

use crate::branch::{BranchResolution, BranchUnit};
use crate::config::CoreConfig;
use crate::core_model::CoreModel;
use crate::latency::LatencyTable;
use crate::stats::CoreStats;
use racesim_isa::{DynInst, InstClass, Reg};
use racesim_mem::{MemOp, MemoryHierarchy};
use std::collections::VecDeque;

/// A bounded window of in-flight entries, each releasing at a cycle.
///
/// Models ROB / issue-queue / load-queue / store-queue occupancy: acquiring
/// an entry at time `t` when the window is full pushes `t` to the earliest
/// release.
#[derive(Debug, Clone)]
struct Window {
    release: VecDeque<u64>,
    cap: usize,
}

impl Window {
    fn new(cap: usize) -> Window {
        Window {
            release: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Returns the earliest cycle `>= at` an entry is free.
    fn available_at(&mut self, at: u64) -> u64 {
        while let Some(&front) = self.release.front() {
            if front <= at {
                self.release.pop_front();
            } else {
                break;
            }
        }
        if self.release.len() < self.cap {
            at
        } else {
            let t = *self.release.front().expect("full window");
            while self.release.front().is_some_and(|&f| f <= t) {
                self.release.pop_front();
            }
            t
        }
    }

    /// Registers an entry that releases at `release`. Entries are assumed
    /// to release roughly in order (in-order dispatch and retire make this
    /// true for ROB/LQ/SQ; the IQ is approximated).
    fn occupy(&mut self, release: u64) {
        self.release.push_back(release);
    }
}

/// Per-cycle bandwidth tracker (dispatch, retire).
#[derive(Debug, Clone, Copy)]
struct Bandwidth {
    width: u8,
    cycle: u64,
    used: u8,
}

impl Bandwidth {
    fn new(width: u8) -> Bandwidth {
        Bandwidth {
            width: width.max(1),
            cycle: 0,
            used: 0,
        }
    }

    /// Admits one event at or after `at`; returns the actual cycle.
    fn admit(&mut self, at: u64) -> u64 {
        let mut c = at.max(self.cycle);
        if c == self.cycle && self.used >= self.width {
            c += 1;
        }
        if c != self.cycle {
            self.cycle = c;
            self.used = 0;
        }
        self.used += 1;
        c
    }
}

/// A pool of identical, pipelined execution ports.
#[derive(Debug, Clone)]
struct PortPool {
    next_free: Vec<u64>,
}

impl PortPool {
    fn new(n: u8) -> PortPool {
        PortPool {
            next_free: vec![0; n.max(1) as usize],
        }
    }

    /// Issues one uop at or after `at`; returns its issue cycle.
    /// `busy_for` is how long the port stays blocked (1 for pipelined).
    fn issue(&mut self, at: u64, busy_for: u64) -> u64 {
        let (idx, &soonest) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .expect("port pool is non-empty");
        let t = at.max(soonest);
        self.next_free[idx] = t + busy_for.max(1);
        t
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlightStore {
    /// 8-byte-aligned block address.
    block8: u64,
    /// Cycle the store's data is available for forwarding.
    data_ready: u64,
    /// Cycle the store leaves the store queue.
    drain: u64,
}

/// Per-cause stall-cycle attribution for the self-profiler (see
/// [`CoreModel::phase_cycles`]). Only accumulated when accounting is
/// switched on.
#[derive(Debug, Default, Clone, Copy)]
struct OooPhases {
    frontend: u64,
    dispatch: u64,
    deps: u64,
    ports: u64,
    mem: u64,
    branch: u64,
}

/// The out-of-order core model.
#[derive(Debug)]
pub struct OooCore {
    lat: LatencyTable,
    frontend_depth: u64,
    stlf_latency: u64,
    div_blocking: bool,

    branch_unit: BranchUnit,

    reg_ready: [u64; Reg::COUNT],
    fetch_cycle: u64,
    fetch_bw: Bandwidth,
    cur_line: u64,
    line_ready: u64,

    dispatch_bw: Bandwidth,
    retire_bw: Bandwidth,
    last_retire: u64,
    last_dispatch: u64,

    rob: Window,
    iq: Window,
    lq: Window,
    sq: Window,

    int_alu: PortPool,
    int_mul: PortPool,
    fp: PortPool,
    load_port: PortPool,
    store_port: PortPool,
    branch_port: PortPool,

    stores: VecDeque<InFlightStore>,
    sq_cap: usize,

    stats: CoreStats,
    phase_acct: bool,
    phases: OooPhases,
}

impl OooCore {
    /// Builds the model from a core configuration (the `ooo`, `frontend`,
    /// `branch` and `lat` sections are used).
    pub fn new(cfg: &CoreConfig) -> OooCore {
        let p = cfg.ooo;
        OooCore {
            lat: cfg.lat,
            frontend_depth: cfg.frontend.depth as u64,
            stlf_latency: p.stlf_latency.max(1),
            div_blocking: p.div_blocking,
            branch_unit: BranchUnit::new(&cfg.branch),
            reg_ready: [0; Reg::COUNT],
            fetch_cycle: 0,
            fetch_bw: Bandwidth::new(cfg.frontend.fetch_width),
            cur_line: u64::MAX,
            line_ready: 0,
            dispatch_bw: Bandwidth::new(p.dispatch_width),
            retire_bw: Bandwidth::new(p.retire_width),
            last_retire: 0,
            last_dispatch: 0,
            rob: Window::new(p.rob_entries as usize),
            iq: Window::new(p.iq_entries as usize),
            lq: Window::new(p.lq_entries as usize),
            sq: Window::new(p.sq_entries as usize),
            int_alu: PortPool::new(p.ports.int_alu),
            int_mul: PortPool::new(p.ports.int_mul),
            fp: PortPool::new(p.ports.fp),
            load_port: PortPool::new(p.ports.load),
            store_port: PortPool::new(p.ports.store),
            branch_port: PortPool::new(p.ports.branch),
            stores: VecDeque::new(),
            sq_cap: p.sq_entries as usize,
            stats: CoreStats::default(),
            phase_acct: false,
            phases: OooPhases::default(),
        }
    }

    fn fetch(&mut self, pc: u64, mem: &mut MemoryHierarchy) -> u64 {
        let shift = mem.l1i_line_bytes().trailing_zeros();
        let line = pc >> shift;
        if line != self.cur_line {
            let r = mem.access(MemOp::IFetch, pc, pc, self.fetch_cycle);
            let extra = r.latency.saturating_sub(mem.l1i_hit_latency());
            self.line_ready = self.fetch_cycle + extra;
            self.cur_line = line;
            if self.phase_acct {
                // I-cache miss stall beyond the pipelined hit latency.
                self.phases.frontend += extra;
            }
        }
        let f = self.fetch_bw.admit(self.fetch_cycle.max(self.line_ready));
        self.fetch_cycle = f;
        f
    }

    /// Looks up store-to-load forwarding for a load at `addr`.
    fn forward_from_store(&mut self, addr: u64, at: u64) -> Option<u64> {
        let block8 = addr >> 3;
        // Search youngest-first.
        self.stores
            .iter()
            .rev()
            .find(|s| s.block8 == block8 && s.drain > at)
            .map(|s| at.max(s.data_ready) + self.stlf_latency)
    }

    fn retire(&mut self, complete: u64) -> u64 {
        // In-order retire at retire-width per cycle.
        let r = self.retire_bw.admit((complete + 1).max(self.last_retire));
        self.last_retire = r;
        r
    }
}

impl CoreModel for OooCore {
    fn consume(&mut self, inst: &DynInst, mem: &mut MemoryHierarchy) {
        let class = inst.stat.class;
        if class == InstClass::Halt {
            return;
        }
        self.stats.instructions += 1;

        // --- Front end -------------------------------------------------
        let f = self.fetch(inst.pc, mem);
        let mut d = f + self.frontend_depth;

        // --- Dispatch: needs ROB + IQ (+ LQ/SQ) entries and bandwidth ---
        let pre_dispatch = d.max(self.last_dispatch);
        d = pre_dispatch; // in-order dispatch
        d = self.rob.available_at(d);
        d = self.iq.available_at(d);
        if class == InstClass::Load {
            d = self.lq.available_at(d);
        } else if class == InstClass::Store {
            d = self.sq.available_at(d);
        }
        let d = self.dispatch_bw.admit(d);
        self.last_dispatch = d;
        if self.phase_acct {
            // Window (ROB/IQ/LQ/SQ) and bandwidth back-pressure.
            self.phases.dispatch += d - pre_dispatch;
        }

        // --- Issue: operands + a port ----------------------------------
        let mut ready = d + 1;
        for &src in inst.stat.sources() {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        if self.phase_acct {
            self.phases.deps += ready - (d + 1);
        }

        let exec_lat = self.lat.of(class);
        let (issue, complete) = match class {
            InstClass::Load => {
                self.stats.loads += 1;
                let issue = self.load_port.issue(ready, 1);
                let complete = if let Some(fwd) = self.forward_from_store(inst.ea, issue) {
                    self.stats.stlf_hits += 1;
                    fwd
                } else {
                    let r = mem.access(MemOp::Load, inst.ea, inst.pc, issue);
                    r.ready_at(issue)
                };
                (issue, complete)
            }
            InstClass::Store => {
                self.stats.stores += 1;
                let issue = self.store_port.issue(ready, 1);
                // The store accesses the hierarchy once address+data are
                // ready; it does not block retire.
                let r = mem.access(MemOp::Store, inst.ea, inst.pc, issue);
                let drain = r.ready_at(issue);
                if self.stores.len() >= self.sq_cap {
                    self.stores.pop_front();
                }
                self.stores.push_back(InFlightStore {
                    block8: inst.ea >> 3,
                    data_ready: issue,
                    drain,
                });
                (issue, issue + 1)
            }
            k if k.is_branch() => {
                let issue = self.branch_port.issue(ready, 1);
                let resolve = issue + exec_lat;
                match self.branch_unit.resolve(inst) {
                    BranchResolution::Mispredict => {
                        self.fetch_cycle = resolve + self.branch_unit.mispredict_penalty;
                        self.cur_line = u64::MAX;
                        if self.phase_acct {
                            self.phases.branch += self.branch_unit.mispredict_penalty;
                        }
                    }
                    BranchResolution::BtbMiss => {
                        self.fetch_cycle = self
                            .fetch_cycle
                            .max(f + 1 + self.branch_unit.btb_miss_penalty);
                    }
                    BranchResolution::Correct => {}
                }
                (issue, resolve)
            }
            InstClass::IntMul | InstClass::IntDiv => {
                let busy = if class == InstClass::IntDiv && self.div_blocking {
                    exec_lat
                } else {
                    1
                };
                let issue = self.int_mul.issue(ready, busy);
                (issue, issue + exec_lat)
            }
            k if k.is_fp_or_simd() => {
                let busy = if matches!(k, InstClass::FpDiv | InstClass::FpSqrt) && self.div_blocking
                {
                    exec_lat
                } else {
                    1
                };
                let issue = self.fp.issue(ready, busy);
                (issue, issue + exec_lat)
            }
            InstClass::Barrier => {
                // Wait for every tracked store to drain.
                let drained = self.stores.iter().map(|s| s.drain).max().unwrap_or(ready);
                (ready.max(drained), ready.max(drained) + 1)
            }
            _ => {
                let issue = self.int_alu.issue(ready, 1);
                (issue, issue + exec_lat)
            }
        };

        if self.phase_acct {
            // Port contention plus, for loads, the load-to-use latency.
            self.phases.ports += issue - ready;
            if class == InstClass::Load {
                self.phases.mem += complete - issue;
            }
        }

        for &dst in inst.stat.dests() {
            self.reg_ready[dst.index()] = complete;
        }

        // --- Retire ------------------------------------------------------
        let retire = self.retire(complete);
        self.rob.occupy(retire);
        self.iq.occupy(issue + 1);
        if class == InstClass::Load {
            self.lq.occupy(retire);
        } else if class == InstClass::Store {
            let drain = self.stores.back().map(|s| s.drain).unwrap_or(retire);
            self.sq.occupy(retire.max(drain));
        }
        self.stats.cycles = self.stats.cycles.max(retire);
    }

    fn finish(&mut self, _mem: &mut MemoryHierarchy) {
        if let Some(last) = self.stores.iter().map(|s| s.drain).max() {
            self.stats.cycles = self.stats.cycles.max(last);
        }
        self.stores.clear();
        self.stats.branch = self.branch_unit.stats();
    }

    fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.branch = self.branch_unit.stats();
        s
    }

    fn set_phase_accounting(&mut self, on: bool) {
        self.phase_acct = on;
    }

    fn phase_cycles(&self) -> Vec<(&'static str, u64)> {
        if !self.phase_acct {
            return Vec::new();
        }
        let p = &self.phases;
        vec![
            ("frontend", p.frontend),
            ("dispatch", p.dispatch),
            ("deps", p.deps),
            ("ports", p.ports),
            ("mem", p.mem),
            ("branch", p.branch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racesim_decoder::Decoder;
    use racesim_isa::asm::Asm;
    use racesim_mem::HierarchyConfig;

    fn dyns(f: impl FnOnce(&mut Asm)) -> Vec<DynInst> {
        let mut a = Asm::new();
        f(&mut a);
        let p = a.finish();
        let d = Decoder::new();
        p.code
            .iter()
            .enumerate()
            .map(|(i, w)| DynInst {
                pc: p.pc_of(i),
                stat: d.decode(*w).unwrap(),
                ea: 0,
                taken: false,
                target: 0,
            })
            .collect()
    }

    /// Runs with a pre-warmed instruction footprint, so tests measure the
    /// back-end effect under study rather than cold I-cache misses.
    fn run_cfg(insts: &[DynInst], cfg: &CoreConfig) -> (CoreStats, MemoryHierarchy) {
        let mut core = OooCore::new(cfg);
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in insts {
            mem.prefill_code(i.pc);
        }
        for i in insts {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        (core.stats(), mem)
    }

    fn run(insts: &[DynInst]) -> (CoreStats, MemoryHierarchy) {
        run_cfg(insts, &CoreConfig::out_of_order_default())
    }

    #[test]
    fn wide_issue_beats_in_order_width() {
        let insts = dyns(|a| {
            for i in 0..300u16 {
                a.addi(Reg::x((i % 24) as u8), Reg::XZR, 1);
            }
        });
        let (s, _) = run(&insts);
        // Dispatch width 3 bounds throughput; two ALU ports bound it to 2.
        assert!(s.cpi() < 0.7, "OoO independent adds: {}", s.cpi());
    }

    #[test]
    fn dependent_chain_still_serialises() {
        let insts = dyns(|a| {
            for _ in 0..200 {
                a.addi(Reg::x(0), Reg::x(0), 1);
            }
        });
        let (s, _) = run(&insts);
        assert!(s.cpi() >= 0.99, "chain: {}", s.cpi());
    }

    #[test]
    fn independent_misses_overlap_mlp() {
        // Two interleaved pointer chases: an OoO core overlaps them.
        let serial = {
            let mut insts = dyns(|a| {
                for _ in 0..40 {
                    a.ldr8(Reg::x(1), Reg::x(1), 0);
                }
            });
            for (k, i) in insts.iter_mut().enumerate() {
                i.ea = 0x100_0000 + (k as u64) * 8192;
            }
            insts
        };
        let parallel = {
            let mut insts = dyns(|a| {
                for _ in 0..20 {
                    a.ldr8(Reg::x(1), Reg::x(1), 0);
                    a.ldr8(Reg::x(2), Reg::x(2), 0);
                }
            });
            for (k, i) in insts.iter_mut().enumerate() {
                i.ea = 0x200_0000 + (k as u64) * 8192;
            }
            insts
        };
        let (s1, _) = run(&serial);
        let (s2, _) = run(&parallel);
        assert!(
            s2.cpi() < s1.cpi() * 0.7,
            "two chains overlap: serial {} vs parallel {}",
            s1.cpi(),
            s2.cpi()
        );
    }

    #[test]
    fn rob_size_limits_mlp() {
        // Independent missing loads separated by long filler chains: a
        // small ROB cannot reach the next miss.
        let mk = || {
            let mut insts = dyns(|a| {
                for _ in 0..10 {
                    a.ldr8(Reg::x(9), Reg::x(1), 0);
                    for _ in 0..40 {
                        a.addi(Reg::x(2), Reg::x(2), 1);
                    }
                }
            });
            let mut load_idx = 0u64;
            for i in insts.iter_mut() {
                if i.stat.class == InstClass::Load {
                    i.ea = 0x300_0000 + load_idx * 8192;
                    load_idx += 1;
                }
            }
            insts
        };
        let big = CoreConfig::out_of_order_default();
        let mut small = big;
        small.ooo.rob_entries = 16;
        let (s_big, _) = run_cfg(&mk(), &big);
        let (s_small, _) = run_cfg(&mk(), &small);
        assert!(
            s_small.cycles > s_big.cycles,
            "small ROB must be slower: {} vs {}",
            s_small.cycles,
            s_big.cycles
        );
    }

    #[test]
    fn store_to_load_forwarding_beats_cache_misses() {
        let mk = |same_addr: bool| {
            let mut insts = dyns(|a| {
                for _ in 0..50 {
                    a.str8(Reg::x(1), Reg::x(2), 0);
                    a.ldr8(Reg::x(3), Reg::x(2), 0);
                }
            });
            let mut k = 0u64;
            for i in insts.iter_mut() {
                match i.stat.class {
                    InstClass::Store => {
                        i.ea = 0x400_0000 + k * 4096;
                    }
                    InstClass::Load => {
                        i.ea = if same_addr {
                            0x400_0000 + k * 4096
                        } else {
                            0x800_0000 + k * 4096
                        };
                        k += 1;
                    }
                    _ => {}
                }
            }
            insts
        };
        let (fwd, _) = run(&mk(true));
        let (nofwd, _) = run(&mk(false));
        assert!(fwd.stlf_hits > 30, "forwarding fires: {}", fwd.stlf_hits);
        assert!(
            fwd.cpi() < nofwd.cpi(),
            "forwarded loads avoid miss latency: {} vs {}",
            fwd.cpi(),
            nofwd.cpi()
        );
    }

    #[test]
    fn mispredicts_flush_the_deeper_pipe() {
        let mk = |hard: bool| {
            let body = dyns(|a| {
                a.cmpi(Reg::x(1), 0);
                let l = a.here();
                a.bcond(racesim_isa::Cond::Ne, l);
            });
            let mut insts = Vec::new();
            let mut lfsr = 0xACE1u32;
            for _ in 0..200 {
                let cmp = body[0];
                let mut br = body[1];
                lfsr = lfsr.wrapping_mul(1103515245).wrapping_add(12345);
                br.taken = hard && (lfsr >> 16) & 1 == 1;
                br.target = br.fallthrough();
                insts.push(cmp);
                insts.push(br);
            }
            insts
        };
        let (easy, _) = run(&mk(false));
        let (hard, _) = run(&mk(true));
        assert!(
            hard.cpi() > easy.cpi() + 1.0,
            "A72 flush is expensive: {} vs {}",
            easy.cpi(),
            hard.cpi()
        );
    }

    #[test]
    fn divider_blocking_is_configurable() {
        let insts = dyns(|a| {
            a.movz(Reg::x(1), 100);
            a.movz(Reg::x(2), 7);
            for _ in 0..30 {
                a.udiv(Reg::x(3), Reg::x(1), Reg::x(2));
            }
        });
        let blocking = CoreConfig::out_of_order_default();
        let mut pipelined = blocking;
        pipelined.ooo.div_blocking = false;
        let (s_b, _) = run_cfg(&insts, &blocking);
        let (s_p, _) = run_cfg(&insts, &pipelined);
        assert!(
            s_p.cycles < s_b.cycles,
            "pipelined divider faster: {} vs {}",
            s_p.cycles,
            s_b.cycles
        );
    }

    #[test]
    fn phase_accounting_attributes_stalls() {
        let core = OooCore::new(&CoreConfig::out_of_order_default());
        assert!(core.phase_cycles().is_empty(), "off by default");

        // A pointer chase books cycles under "mem" and "deps"; the
        // timing itself must be identical with accounting on.
        let mut insts = dyns(|a| {
            for _ in 0..40 {
                a.ldr8(Reg::x(1), Reg::x(1), 0);
            }
        });
        for (k, i) in insts.iter_mut().enumerate() {
            i.ea = 0x100_0000 + (k as u64) * 8192;
        }
        let (plain, _) = run(&insts);
        let mut core = OooCore::new(&CoreConfig::out_of_order_default());
        core.set_phase_accounting(true);
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
        for i in &insts {
            mem.prefill_code(i.pc);
        }
        for i in &insts {
            core.consume(i, &mut mem);
        }
        core.finish(&mut mem);
        assert_eq!(core.stats(), plain, "accounting must be observation-only");
        let phases = core.phase_cycles();
        let get = |n: &str| phases.iter().find(|(k, _)| *k == n).unwrap().1;
        assert!(get("mem") > 1000, "{phases:?}");
        assert!(get("deps") > 1000, "{phases:?}");
    }

    #[test]
    fn retire_width_caps_throughput() {
        let insts = dyns(|a| {
            for i in 0..300u16 {
                a.addi(Reg::x((i % 24) as u8), Reg::XZR, 1);
            }
        });
        let mut narrow = CoreConfig::out_of_order_default();
        narrow.ooo.retire_width = 1;
        let (s, _) = run_cfg(&insts, &narrow);
        assert!(
            s.cpi() >= 0.99,
            "retire width 1 forces CPI >= 1: {}",
            s.cpi()
        );
    }
}
