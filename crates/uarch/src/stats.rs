//! Core-side statistics.

use crate::branch::BranchStats;

/// Statistics reported by a core timing model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Dynamic instructions timed.
    pub instructions: u64,
    /// Total cycles from first fetch to last retire.
    pub cycles: u64,
    /// Branch unit counters.
    pub branch: BranchStats,
    /// Dynamic loads issued.
    pub loads: u64,
    /// Dynamic stores issued.
    pub stores: u64,
    /// Loads whose value was forwarded from an in-flight store
    /// (out-of-order model only).
    pub stlf_hits: u64,
}

impl CoreStats {
    /// Cycles per instruction; 0 when no instructions ran.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle; 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.branch.mispredicts as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CoreStats {
            instructions: 1000,
            cycles: 2000,
            ..CoreStats::default()
        };
        assert!((s.cpi() - 2.0).abs() < 1e-12);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        let empty = CoreStats::default();
        assert_eq!(empty.cpi(), 0.0);
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.branch_mpki(), 0.0);
    }
}
