//! Property tests on the core timing models.

use proptest::prelude::*;
use racesim_decoder::Decoder;
use racesim_isa::{asm::Asm, DynInst, MemWidth, Reg};
use racesim_mem::{HierarchyConfig, MemoryHierarchy};
use racesim_uarch::{CoreConfig, CoreModel, InOrderCore, OooCore};

/// A small static program whose instructions we re-sequence dynamically.
fn static_pool() -> Vec<DynInst> {
    let mut a = Asm::new();
    a.addi(Reg::x(1), Reg::x(1), 1); // 0: dependent chain
    a.add(Reg::x(2), Reg::x(3), Reg::x(4)); // 1: independent
    a.mul(Reg::x(5), Reg::x(1), Reg::x(2)); // 2
    a.udiv(Reg::x(6), Reg::x(5), Reg::x(2)); // 3
    a.fadd(Reg::v(0), Reg::v(1), Reg::v(2)); // 4
    a.ldr(MemWidth::B8, Reg::x(7), Reg::x(8), Reg::XZR, 0); // 5
    a.str8(Reg::x(7), Reg::x(9), 0); // 6
    a.cmpi(Reg::x(1), 100); // 7
    let l = a.here();
    a.bcond(racesim_isa::Cond::Ne, l); // 8
    a.dsb(); // 9
    let p = a.finish();
    let d = Decoder::new();
    p.code
        .iter()
        .enumerate()
        .map(|(i, w)| DynInst {
            pc: p.pc_of(i),
            stat: d.decode(*w).unwrap(),
            ea: 0,
            taken: false,
            target: 0,
        })
        .collect()
}

fn build_stream(choices: &[(usize, u64, bool)]) -> Vec<DynInst> {
    let pool = static_pool();
    choices
        .iter()
        .map(|(idx, addr, taken)| {
            let mut d = pool[*idx];
            if d.stat.is_memory() {
                d.ea = 0x10_0000 + (addr & 0x00FF_FFF8);
            }
            if d.stat.is_branch() {
                d.taken = *taken;
                d.target = d.fallthrough(); // loop branch back to itself
            }
            d
        })
        .collect()
}

fn run(core: &mut dyn CoreModel, insts: &[DynInst]) -> u64 {
    let mut mem = MemoryHierarchy::new(&HierarchyConfig::default());
    for i in insts {
        core.consume(i, &mut mem);
    }
    core.finish(&mut mem);
    core.stats().cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both cores accept any dynamic sequence without panicking, count
    /// instructions exactly, and keep branch counters consistent.
    #[test]
    fn cores_are_total_and_consistent(
        choices in proptest::collection::vec((0usize..10, any::<u64>(), any::<bool>()), 1..300)
    ) {
        let insts = build_stream(&choices);
        for kind in 0..2 {
            let mut core: Box<dyn CoreModel> = if kind == 0 {
                Box::new(InOrderCore::new(&CoreConfig::in_order_default()))
            } else {
                Box::new(OooCore::new(&CoreConfig::out_of_order_default()))
            };
            let cycles = run(core.as_mut(), &insts);
            let s = core.stats();
            prop_assert_eq!(s.instructions, insts.len() as u64);
            prop_assert!(cycles >= 1);
            prop_assert!(s.branch.mispredicts <= s.branch.branches);
            prop_assert!(s.loads + s.stores <= s.instructions);
        }
    }

    /// Appending instructions never makes the program finish earlier
    /// (cycle counts are monotone in the stream prefix).
    #[test]
    fn cycles_are_monotone_in_prefix(
        choices in proptest::collection::vec((0usize..10, any::<u64>(), any::<bool>()), 2..150),
        cut in 1usize..100,
    ) {
        let insts = build_stream(&choices);
        let cut = cut.min(insts.len() - 1);
        for kind in 0..2 {
            let (full, prefix) = if kind == 0 {
                (
                    run(&mut InOrderCore::new(&CoreConfig::in_order_default()), &insts),
                    run(&mut InOrderCore::new(&CoreConfig::in_order_default()), &insts[..cut]),
                )
            } else {
                (
                    run(&mut OooCore::new(&CoreConfig::out_of_order_default()), &insts),
                    run(&mut OooCore::new(&CoreConfig::out_of_order_default()), &insts[..cut]),
                )
            };
            prop_assert!(prefix <= full, "prefix {prefix} > full {full} (kind {kind})");
        }
    }
}
