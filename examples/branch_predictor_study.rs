//! A classic architecture study on top of the public simulator API:
//! how do the direction predictors compare across the control-flow
//! micro-benchmarks, and what is indirect-branch prediction worth on the
//! case-statement kernels (`CS1`, `CS3`, `CRm`)?
//!
//! Run with: `cargo run --release --example branch_predictor_study`

use racesim::prelude::*;
use racesim::uarch::branch::{DirPredictorConfig, IndirectPredictorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels: Vec<Workload> = microbench_suite(Scale::TINY)
        .into_iter()
        .filter(|w| w.category == Category::ControlFlow)
        .collect();
    let traces: Vec<_> = kernels
        .iter()
        .map(|w| w.trace().expect("kernels run"))
        .collect();

    let predictors: [(&str, DirPredictorConfig); 4] = [
        ("static-taken", DirPredictorConfig::StaticTaken),
        ("bimodal-4k", DirPredictorConfig::Bimodal { table_bits: 12 }),
        (
            "gshare-4k",
            DirPredictorConfig::Gshare {
                table_bits: 12,
                history_bits: 10,
            },
        ),
        (
            "tournament-4k",
            DirPredictorConfig::Tournament {
                table_bits: 12,
                history_bits: 10,
            },
        ),
    ];

    println!("branch MPKI per predictor (control-flow kernels, A53-like core):\n");
    print!("{:<10}", "kernel");
    for (name, _) in &predictors {
        print!("{name:>15}");
    }
    println!();
    for (w, t) in kernels.iter().zip(&traces) {
        print!("{:<10}", w.name);
        for (_, dir) in &predictors {
            let mut platform = Platform::a53_like();
            platform.core.branch.direction = *dir;
            let stats = Simulator::new(platform).run(t)?;
            print!("{:>15.2}", stats.core.branch_mpki());
        }
        println!();
    }

    // Indirect prediction on the case-statement kernels.
    println!("\nindirect-branch support on the case/indirect kernels (CPI):\n");
    println!(
        "{:<10}{:>15}{:>15}{:>10}",
        "kernel", "btb-only", "path-history", "speedup"
    );
    for (w, t) in kernels.iter().zip(&traces) {
        if !["CS1", "CS3", "CRm", "CRd"].contains(&w.name.as_str()) {
            continue;
        }
        let run = |indirect| -> Result<f64, racesim::sim::SimError> {
            let mut platform = Platform::a53_like();
            platform.core.branch.indirect = indirect;
            Ok(Simulator::new(platform).run(t)?.cpi())
        };
        let btb = run(IndirectPredictorConfig::BtbOnly)?;
        let path = run(IndirectPredictorConfig::PathHistory {
            table_bits: 10,
            history_bits: 8,
        })?;
        println!(
            "{:<10}{:>15.3}{:>15.3}{:>9.2}x",
            w.name,
            btb,
            path,
            btb / path
        );
    }
    println!(
        "\nCS1 is the kernel that exposed the missing indirect predictor in the paper \
         (Section IV-B)."
    );
    Ok(())
}
