//! Prefetcher shoot-out on the memory-hierarchy micro-benchmarks: the
//! options the paper adds as tunables — none, next-line, stride and GHB —
//! head to head, plus the effect of cache index hashing on the
//! conflict-miss kernels (`MC`, `MCS`).
//!
//! Run with: `cargo run --release --example prefetcher_duel`

use racesim::mem::{IndexHash, PrefetcherConfig};
use racesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels: Vec<Workload> = microbench_suite(Scale::TINY)
        .into_iter()
        .filter(|w| w.category == Category::MemoryHierarchy)
        .collect();
    let traces: Vec<_> = kernels
        .iter()
        .map(|w| w.trace().expect("kernels run"))
        .collect();

    let prefetchers: [(&str, PrefetcherConfig); 4] = [
        ("none", PrefetcherConfig::None),
        ("next-line", PrefetcherConfig::NextLine),
        (
            "stride",
            PrefetcherConfig::Stride {
                table_entries: 64,
                degree: 2,
            },
        ),
        (
            "ghb",
            PrefetcherConfig::Ghb {
                buffer_entries: 128,
                index_entries: 64,
                degree: 2,
            },
        ),
    ];

    println!("CPI per prefetcher (memory kernels, A53-like core):\n");
    print!("{:<14}", "kernel");
    for (name, _) in &prefetchers {
        print!("{name:>12}");
    }
    println!();
    for (w, t) in kernels.iter().zip(&traces) {
        print!("{:<14}", w.name);
        for (_, pf) in &prefetchers {
            let mut platform = Platform::a53_like();
            platform.mem.prefetcher = *pf;
            let stats = Simulator::new(platform).run(t)?;
            print!("{:>12.3}", stats.cpi());
        }
        println!();
    }

    // Index hashing on the conflict kernels.
    println!("\ncache index hashing on the conflict kernels (CPI):\n");
    println!(
        "{:<14}{:>12}{:>12}{:>12}",
        "kernel", "mask", "xor", "mersenne"
    );
    for (w, t) in kernels.iter().zip(&traces) {
        if !["MC", "MCS", "MD"].contains(&w.name.as_str()) {
            continue;
        }
        print!("{:<14}", w.name);
        for hash in [IndexHash::Mask, IndexHash::Xor, IndexHash::MersenneMod] {
            let mut platform = Platform::a53_like();
            platform.mem.l1d.hash = hash;
            let stats = Simulator::new(platform).run(t)?;
            print!("{:>12.3}", stats.cpi());
        }
        println!();
    }
    println!(
        "\nMC strides by exactly one L1 set-span, so mask indexing thrashes one set while \
         xor/Mersenne spread the blocks — this is why the paper makes hashing tunable."
    );
    Ok(())
}
