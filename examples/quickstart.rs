//! Quickstart: hardware-validate the in-order (Cortex-A53-like) model.
//!
//! This walks the paper's Figure-1 methodology end to end at a small
//! scale: latency probes on the "board", a racing-tuner run over the
//! 40-kernel micro-benchmark suite, and the step-5 per-component
//! analysis.
//!
//! Run with: `cargo run --release --example quickstart`

use racesim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "hardware": a black box that runs workloads and returns perf
    // counters. Its internal configuration is hidden, as on a real board.
    let board = ReferenceBoard::firefly_a53();
    println!("board: {}", board.name());

    // A quick validation: tiny benchmark scale, small tuning budget.
    let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
    settings.tuner.budget = 1_200;
    settings.tuner.threads = std::thread::available_parallelism()?.get();
    let validator = Validator::new(&board, settings);

    println!("running steps 1-4 (public info, lmbench probes, racing)...");
    let outcome = validator.run()?;

    println!(
        "\nmean absolute CPI error: {:>5.1}% untuned  ->  {:>5.1}% tuned  ({} evaluations)",
        outcome.untuned_mean_error(),
        outcome.tuned_mean_error(),
        outcome.tune.evals_used,
    );

    // Per-benchmark errors, Figure-4 style.
    let rows: Vec<(String, f64)> = outcome
        .tuned_results
        .iter()
        .map(|r| (r.name.clone(), r.error_pct()))
        .collect();
    println!("\nper-benchmark CPI error (tuned):");
    print!("{}", report::bar_chart(&rows, 40, "%"));

    // Step 5: which components still need work?
    let analysis = analysis::analyse(&outcome.tuned_results);
    println!("\nstep-5 component analysis:");
    for c in &analysis.categories {
        println!(
            "  {:<14} mean {:>5.1}%   worst {} ({:.1}%)",
            c.category.to_string(),
            c.mean_error,
            c.worst_bench,
            c.worst_error
        );
    }
    if analysis.needs_another_round() {
        println!("\nrecommendations:");
        for r in &analysis.recommendations {
            println!("  - {r}");
        }
    } else {
        println!("\nno component exceeds the attention threshold — model validated.");
    }

    println!(
        "\nwinning configuration:\n  {}",
        outcome.best.render(&outcome.space)
    );
    Ok(())
}
