//! Validate the out-of-order (Cortex-A72-like) model, then check how the
//! tuned configuration generalises to the SPEC CPU2017 proxy workloads —
//! the paper's train-on-microbenchmarks / test-on-SPEC protocol
//! (Figures 5 and 6).
//!
//! Run with: `cargo run --release --example tune_a72`

use racesim::core::validator::PreparedSuite;
use racesim::prelude::*;
use racesim::sim::{SimOptions, Simulator};
use racesim_decoder::Decoder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = ReferenceBoard::firefly_a72();
    println!("board: {}", board.name());

    let mut settings = ValidatorSettings::quick(CoreKind::OutOfOrder);
    settings.tuner.budget = 1_500;
    settings.tuner.threads = std::thread::available_parallelism()?.get();
    let validator = Validator::new(&board, settings);

    println!("tuning the out-of-order model on the micro-benchmark suite...");
    let outcome = validator.run()?;
    println!(
        "micro-benchmarks: {:.1}% untuned -> {:.1}% tuned",
        outcome.untuned_mean_error(),
        outcome.tuned_mean_error()
    );

    // Validation set: the SPEC proxies, never seen during tuning.
    println!("\nevaluating the tuned model on the SPEC CPU2017 proxies...");
    let spec = spec_suite(Scale::TINY);
    let prepared = PreparedSuite::prepare(&spec, &board)?;
    let sim = Simulator::with_decoder(outcome.tuned.clone(), Decoder::new(), SimOptions::default());

    let mut rows = Vec::new();
    let mut total = 0.0;
    for i in 0..prepared.len() {
        let stats = sim.run(&prepared.traces[i])?;
        let hw_cpi = prepared.hw[i].cpi();
        let err = 100.0 * ((stats.cpi() - hw_cpi) / hw_cpi).abs();
        total += err;
        rows.push((prepared.names[i].clone(), err));
    }
    println!("\nper-application CPI error (tuned model, SPEC proxies):");
    print!("{}", racesim::core::report::bar_chart(&rows, 40, "%"));
    println!(
        "\naverage SPEC CPI error: {:.1}%  (the paper reports ~15% for the A72)",
        total / prepared.len() as f64
    );
    Ok(())
}
