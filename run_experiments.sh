#!/usr/bin/env bash
# Regenerates every table and figure of the paper and stores the logs under
# results/. Knobs: RACESIM_SCALE (default 512), RACESIM_BUDGET (default 12000).
set -euo pipefail

cargo build --release -p racesim-bench

mkdir -p results
for exp in table1 table2 fig2_race fig4 fig5 fig6 fig7 fig8; do
    echo "=== running $exp ==="
    ./target/release/$exp | tee "results/$exp.log"
done
echo "all experiment logs and CSVs are under results/"
