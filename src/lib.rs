//! # racesim
//!
//! **Racing to hardware-validated simulation** — a full Rust
//! reproduction of Adileh et al., *"Racing to Hardware-Validated
//! Simulation"* (ISPASS 2019).
//!
//! The paper proposes a systematic methodology for validating processor
//! simulators against real hardware: measure targeted micro-benchmarks on
//! the machine, then let a machine-learning **iterated racing** algorithm
//! (irace) search the simulator's undisclosed configuration parameters
//! until the CPI error is minimised, using per-component residuals to
//! also uncover *modelling* bugs (missing indirect-branch prediction,
//! decoder-library dependence bugs, missing prefetchers/hashing).
//!
//! This workspace rebuilds the entire stack from scratch:
//!
//! * [`isa`]/[`decoder`]/[`trace`] — an AArch64-like micro-ISA, a decoder
//!   library (with optional "Capstone-like" dependence bugs), and a
//!   SIFT-style trace format;
//! * [`kernels`] — all 40 micro-benchmarks of the paper's Table I, the
//!   lmbench-style latency probes, 11 SPEC CPU2017 proxy workloads
//!   (Table II), and the functional emulator that records their traces;
//! * [`mem`]/[`uarch`]/[`sim`] — the Sniper-ARM-equivalent timing models:
//!   caches with hashing/prefetching/MSHRs/victim buffers, branch
//!   predictor zoo, in-order (Cortex-A53-like) and out-of-order
//!   (Cortex-A72-like) cores, and the trace-driven simulator driver;
//! * [`hw`] — the "Firefly board": a golden reference with a hidden
//!   configuration plus system effects no user model captures;
//! * [`stats`]/[`race`] — Friedman/Wilcoxon/t statistics and the iterated
//!   racing tuner with random/grid baselines;
//! * [`telemetry`] — low-overhead metrics (atomic counters, gauges,
//!   log-bucketed histograms) and the structured JSONL campaign journal
//!   behind `racesim tune --telemetry` / `racesim report`;
//! * [`core`] — the methodology itself: latency estimation, the ~60
//!   undisclosed-parameter schema, racing orchestration, per-component
//!   error analysis and the close-to-optimum perturbation study.
//!
//! # Quickstart
//!
//! ```no_run
//! use racesim::prelude::*;
//!
//! let board = ReferenceBoard::firefly_a53();
//! let validator = Validator::new(&board, ValidatorSettings::quick(CoreKind::InOrder));
//! let outcome = validator.run()?;
//! println!(
//!     "mean CPI error: {:.1}% untuned -> {:.1}% tuned",
//!     outcome.untuned_mean_error(),
//!     outcome.tuned_mean_error()
//! );
//! # Ok::<(), racesim::core::ValidationError>(())
//! ```

#![warn(missing_docs)]

pub use racesim_core as core;
pub use racesim_decoder as decoder;
pub use racesim_hw as hw;
pub use racesim_isa as isa;
pub use racesim_kernels as kernels;
pub use racesim_mem as mem;
pub use racesim_race as race;
pub use racesim_sim as sim;
pub use racesim_stats as stats;
pub use racesim_telemetry as telemetry;
pub use racesim_trace as trace;
pub use racesim_uarch as uarch;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use racesim_core::{
        analysis, diff, latency, params, perturb, report, CampaignSpec, Revision,
        ValidationOutcome, Validator, ValidatorSettings,
    };
    pub use racesim_hw::{HardwarePlatform, PerfCounters, ReferenceBoard};
    pub use racesim_kernels::{microbench_suite, spec_suite, Category, Scale, Workload};
    pub use racesim_race::{Configuration, CostFn, ParamSpace, RacingTuner, Tuner, TunerSettings};
    pub use racesim_sim::{Platform, SimStats, Simulator};
    pub use racesim_uarch::CoreKind;
}
