//! The differential harness end to end: identical models diff clean,
//! a single-parameter model perturbation produces diverging kernels,
//! and the baseline file format carries exact counters across the
//! write → read boundary.

use racesim::core::diff;
use racesim::decoder::Decoder;
use racesim::kernels::{microbench_suite_initialized, Scale};
use racesim::sim::Platform;

fn capture(platform: &Platform) -> Vec<diff::KernelCpi> {
    let suite = microbench_suite_initialized(Scale::TINY);
    diff::capture_platform(platform, Decoder::new(), &suite).expect("capture runs")
}

#[test]
fn identical_models_diff_clean_and_a_perturbed_model_diverges() {
    let base = Platform::a53_like();
    let a = capture(&base);

    // Same model, captured twice: bit-identical CPI, exit-clean diff.
    let again = capture(&base);
    let same = diff::diff_records("a53", &a, "a53 again", &again, 0.0);
    assert!(!same.has_divergence(), "{}", same.render_text());

    // One latency parameter moved by one cycle: the harness must report
    // diverging kernels (this is the regression the gate exists for).
    let mut perturbed = base.clone();
    perturbed.mem.l2.latency += 1;
    let b = capture(&perturbed);
    let d = diff::diff_records("a53", &a, "a53 l2+1", &b, 0.0);
    assert!(d.has_divergence(), "{}", d.render_text());
    assert!(
        d.rows.iter().any(|r| r.diverged && r.rel_pct > 0.0),
        "divergence is quantified: {d:?}"
    );
    // Memory-bound kernels must be among the movers.
    assert!(
        d.rows.iter().any(|r| r.diverged && r.name.starts_with('M')),
        "{}",
        d.render_text()
    );

    // A generous tolerance admits the drift; the exact gate does not.
    let tolerant = diff::diff_records("a53", &a, "a53 l2+1", &b, 50.0);
    assert!(
        tolerant.diverged() < d.diverged(),
        "tolerance must admit small drift"
    );
}

#[test]
fn baselines_carry_exact_counters_across_builds() {
    let a = capture(&Platform::a53_like());
    let text = diff::render_baseline("a53/tiny", &a);
    let (label, back) = diff::parse_baseline(&text).expect("roundtrip");
    assert_eq!(label, "a53/tiny");
    assert_eq!(back, a, "integer counters survive serialisation exactly");
    let d = diff::diff_records("saved", &back, "fresh", &a, 0.0);
    assert!(!d.has_divergence(), "{}", d.render_text());
}
