//! End-to-end integration: the full methodology at a small budget, on
//! both cores, exercising every crate in the workspace together.

use racesim::prelude::*;

#[test]
fn a53_validation_pipeline_improves_and_generalises() {
    let board = ReferenceBoard::firefly_a53();
    let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
    settings.tuner.budget = 900;
    settings.tuner.threads = 4;
    let outcome = Validator::new(&board, settings).run().expect("pipeline");

    // Tuning improves the tuning set.
    let before = outcome.untuned_mean_error();
    let after = outcome.tuned_mean_error();
    assert!(
        after < before,
        "tuning must reduce microbenchmark error: {before:.1}% -> {after:.1}%"
    );

    // ... and generalises to unseen macro workloads (SPEC proxies):
    // the tuned model should not be worse than the untuned one there.
    let spec = spec_suite(Scale::TINY);
    let prepared = racesim::core::PreparedSuite::prepare(&spec, &board).expect("spec measurable");
    let err_of = |p: &Platform| -> f64 {
        let sim = Simulator::new(p.clone());
        (0..prepared.len())
            .map(|i| {
                let s = sim.run(&prepared.traces[i]).unwrap();
                100.0 * ((s.cpi() - prepared.hw[i].cpi()) / prepared.hw[i].cpi()).abs()
            })
            .sum::<f64>()
            / prepared.len() as f64
    };
    let untuned_spec = err_of(&outcome.untuned);
    let tuned_spec = err_of(&outcome.tuned);
    assert!(
        tuned_spec <= untuned_spec * 1.1,
        "tuned model must generalise: {untuned_spec:.1}% -> {tuned_spec:.1}%"
    );
}

#[test]
fn a72_validation_pipeline_improves() {
    let board = ReferenceBoard::firefly_a72();
    let mut settings = ValidatorSettings::quick(CoreKind::OutOfOrder);
    settings.tuner.budget = 900;
    settings.tuner.threads = 4;
    let outcome = Validator::new(&board, settings).run().expect("pipeline");
    assert!(
        outcome.tuned_mean_error() < outcome.untuned_mean_error(),
        "{:.1}% -> {:.1}%",
        outcome.untuned_mean_error(),
        outcome.tuned_mean_error()
    );
}

#[test]
fn initial_revision_has_higher_floor_than_fixed() {
    // The Figure-4 story: the initial model (buggy decoder, missing
    // features, uninitialised arrays) cannot be tuned as well as the
    // fixed model under the same small budget.
    let board = ReferenceBoard::firefly_a53();
    let run = |revision| {
        let mut settings = ValidatorSettings::quick(CoreKind::InOrder);
        settings.revision = revision;
        settings.tuner.budget = 700;
        settings.tuner.threads = 4;
        Validator::new(&board, settings)
            .run()
            .expect("pipeline")
            .tuned_mean_error()
    };
    let initial = run(Revision::Initial);
    let fixed = run(Revision::Fixed);
    assert!(
        fixed < initial,
        "fixing abstraction errors must lower the tuned floor: initial {initial:.1}% vs fixed {fixed:.1}%"
    );
}

#[test]
fn analysis_of_untuned_initial_model_recommends_the_papers_fixes() {
    use racesim::core::params;
    use racesim::core::validator::{evaluate_platform, PreparedSuite};

    let board = ReferenceBoard::firefly_a53();
    let settings = ValidatorSettings {
        kind: CoreKind::InOrder,
        revision: Revision::Initial,
        scale: Scale::TINY,
        tuner: TunerSettings::default(),
        metric: racesim::core::CostMetric::CpiError,
    };
    let v = Validator::new(&board, settings);
    let base = v.base_platform().expect("probes");
    let space = params::build_space(CoreKind::InOrder, Revision::Initial);
    let guess = params::best_guess(&space, CoreKind::InOrder);
    let platform = params::apply(&space, &guess, &base);
    let suite = PreparedSuite::prepare(&v.suite(), &board).expect("suite");
    let results = evaluate_platform(&platform, v.decoder(), &suite);
    let report = analysis::analyse(&results);
    assert!(
        report.needs_another_round(),
        "the untuned initial model must trip the analysis: {:.1}% overall",
        report.overall_error
    );
}
