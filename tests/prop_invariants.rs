//! Cross-crate property tests on core invariants.

use proptest::prelude::*;
use racesim::isa::{asm::Asm, Reg};
use racesim::prelude::*;
use racesim::trace::{TraceBuffer, TraceRecord};

/// Builds a random but well-formed straight-line trace over a handful of
/// static instructions.
fn arb_trace() -> impl Strategy<Value = TraceBuffer> {
    // Static program: add, load, store, plus a conditional branch target.
    let mut a = Asm::new();
    a.addi(Reg::x(1), Reg::x(1), 1); // 0
    a.ldr8(Reg::x(2), Reg::x(3), 0); // 1
    a.str8(Reg::x(2), Reg::x(4), 0); // 2
    a.cmpi(Reg::x(1), 5); // 3
    let l = a.here();
    a.bcond(racesim::isa::Cond::Ne, l); // 4
    let p = a.finish();

    (
        proptest::collection::vec((0usize..5, 0u64..1 << 20, any::<bool>()), 1..400),
        Just(p),
    )
        .prop_map(|(steps, p)| {
            let mut t = TraceBuffer::new();
            for (idx, addr, taken) in steps {
                let pc = p.pc_of(idx);
                let w = p.code[idx];
                let rec = match idx {
                    1 | 2 => TraceRecord::memory(pc, w, 0x10_0000 + (addr & !7)),
                    4 => TraceRecord::branch(pc, w, taken, p.pc_of(0)),
                    _ => TraceRecord::plain(pc, w),
                };
                racesim::trace::TraceSink::push(&mut t, rec).unwrap();
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed trace simulates without panicking on both cores,
    /// and basic accounting invariants hold.
    #[test]
    fn simulators_accept_arbitrary_wellformed_traces(trace in arb_trace()) {
        for platform in [Platform::a53_like(), Platform::a72_like()] {
            let stats = Simulator::new(platform).run(&trace).unwrap();
            prop_assert_eq!(stats.core.instructions, trace.len() as u64);
            prop_assert!(stats.core.cycles >= 1);
            // No core retires more than its theoretical width each cycle —
            // CPI can never drop below 1/4 with these configs.
            prop_assert!(stats.cpi() >= 0.25, "cpi {}", stats.cpi());
            // Branch counters are consistent.
            prop_assert!(stats.core.branch.mispredicts <= stats.core.branch.branches);
        }
    }

    /// The memory hierarchy's counters stay consistent for any access mix.
    #[test]
    fn hierarchy_counters_are_consistent(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1 << 22), 1..500)
    ) {
        use racesim::mem::{HierarchyConfig, MemOp, MemoryHierarchy};
        let mut m = MemoryHierarchy::new(&HierarchyConfig::default());
        let mut cycle = 0;
        for (is_store, addr) in &ops {
            let op = if *is_store { MemOp::Store } else { MemOp::Load };
            let r = m.access(op, *addr, 0x1000, cycle);
            prop_assert!(r.latency >= 1);
            cycle += 10;
        }
        let s = m.stats();
        prop_assert_eq!(s.l1d.accesses, ops.len() as u64);
        prop_assert_eq!(s.l1d.hits + s.l1d.misses, s.l1d.accesses);
        prop_assert!(s.l2.accesses >= s.l1d.misses.saturating_sub(s.l2.prefetch_fills));
    }

    /// Tuner configurations produced by the sampling model always apply
    /// cleanly to a platform (no panics, all fields in range).
    #[test]
    fn sampled_configurations_always_apply(seed in any::<u64>()) {
        use racesim::core::params::{apply, build_space};
        use racesim::race::SamplingModel;
        use rand::{rngs::StdRng, SeedableRng};

        let space = build_space(CoreKind::OutOfOrder, racesim::core::Revision::Fixed);
        let model = SamplingModel::new(&space);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = model.sample(&space, &mut rng);
        let p = apply(&space, &cfg, &Platform::a72_like());
        // The resulting platform must be constructible.
        let _ = Simulator::new(p);
    }
}
