//! The golden-journal gate: `tests/fixtures/golden_campaign.jsonl` is a
//! committed recording of a two-segment (checkpoint → resume),
//! fault-injected tuning campaign. Replaying it from scratch must
//! reproduce the recorded outcome **bit for bit** — survivor counts,
//! elimination order, per-iteration and final best costs as f64 bit
//! patterns. Any model, tuner, RNG, or fault-plan change that shifts
//! campaign behaviour trips this test; if the change is intentional,
//! re-record the fixture (the command line is in DESIGN.md §8).

use racesim::core::CampaignSpec;
use racesim::race::replay::{compare, RecordedCampaign, Verdict};
use racesim::telemetry::{parse_journal, read_journal_lossy, Event, Telemetry};
use std::path::PathBuf;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_campaign.jsonl")
}

/// Replays the committed campaign and returns (recorded, replayed).
fn replay_golden() -> (RecordedCampaign, RecordedCampaign) {
    let (entries, warnings) = read_journal_lossy(&fixture()).expect("fixture readable");
    assert!(warnings.is_empty(), "golden journal is clean: {warnings:?}");
    let recorded = RecordedCampaign::digest(&entries).expect("digestible");
    assert_eq!(recorded.segments, 2, "fixture spans a checkpoint resume");

    let spec = CampaignSpec::from_journal(&entries).expect("spec reconstructible");
    assert_eq!(spec.fault_profile, "transient", "fixture is fault-injected");
    let t = Telemetry::in_memory();
    spec.run(&t).expect("replay runs");
    t.flush();
    let text = t.lines().join("\n");
    let (fresh, errors) = parse_journal(&text);
    assert!(errors.is_empty(), "replay journal parses: {errors:?}");
    let replayed = RecordedCampaign::digest(&fresh).expect("digestible");
    (recorded, replayed)
}

#[test]
fn golden_campaign_replays_bit_for_bit() {
    let (recorded, replayed) = replay_golden();
    let report = compare(&recorded, &replayed);
    assert_eq!(
        report.verdict,
        Verdict::Match,
        "replay diverged from the golden journal:\n{}",
        report.render_text()
    );
    assert!(report.iterations_checked >= 2, "campaign has iterations");
    assert!(
        report.eliminations_checked >= 1,
        "fixture pins elimination order"
    );
    assert_eq!(report.best_cost_recorded, report.best_cost_replayed);

    // The machine-readable report keeps its stable schema.
    let json = report.render_json();
    for key in [
        "\"schema_version\":1",
        "\"verdict\":\"match\"",
        "\"segments\":2",
        "\"iterations_recorded\"",
        "\"iterations_replayed\"",
        "\"iterations_checked\"",
        "\"eliminations_checked\"",
        "\"best_cost_recorded_bits\"",
        "\"best_cost_replayed_bits\"",
        "\"divergence\":null",
        "\"notes\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn golden_campaign_detects_a_one_ulp_perturbation() {
    let (entries, _) = read_journal_lossy(&fixture()).expect("fixture readable");
    let recorded = RecordedCampaign::digest(&entries).expect("digestible");

    // Nudge one recorded iteration cost by one ulp — the smallest
    // possible change — and verify the comparator pinpoints it.
    let mut nudged = entries.clone();
    let target = nudged
        .iter_mut()
        .find_map(|e| match &mut e.event {
            Event::IterationEnd { best_cost, .. } => Some(best_cost),
            _ => None,
        })
        .expect("fixture has an iteration_end");
    *target = f64::from_bits(target.to_bits() ^ 1);

    let perturbed = RecordedCampaign::digest(&nudged).expect("digestible");
    let report = compare(&recorded, &perturbed);
    assert_eq!(report.verdict, Verdict::Diverged);
    let d = report.divergence.expect("pinpointed");
    assert_eq!(d.field, "best_cost_bits");
    assert!(d.location.contains("iteration"), "{}", d.location);
}

#[test]
fn golden_journal_survives_a_torn_tail() {
    // Chop the final line mid-JSON, as a crashed writer would: the lossy
    // reader must keep every whole line and classify the tear.
    let text = std::fs::read_to_string(fixture()).expect("fixture readable");
    let cut = text.trim_end().len() - 7;
    let (entries, warnings) = racesim::telemetry::parse_journal_lossy(&text[..cut]);
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].torn_tail, "classified as torn: {warnings:?}");
    let (full, _) = racesim::telemetry::parse_journal_lossy(&text);
    assert_eq!(entries.len(), full.len() - 1, "only the torn line is lost");
}
