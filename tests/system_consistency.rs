//! Cross-crate consistency: the hardware board, the simulator and the
//! workloads must agree with each other at the seams.

use racesim::decoder::Decoder;
use racesim::hw::SystemEffects;
use racesim::prelude::*;
use racesim::sim::SimOptions;

/// With system effects disabled and the oracle (hidden) platform plugged
/// into the user-facing simulator, board and simulator are the *same
/// engine* and must agree exactly — the zero-abstraction-error sanity
/// check.
#[test]
fn board_equals_simulator_on_the_oracle_platform() {
    let board = ReferenceBoard::firefly_a53().with_effects(SystemEffects::none());
    for w in microbench_suite(Scale::TINY).iter().take(8) {
        if w.uninit_data {
            continue; // first-touch handling intentionally differs
        }
        let trace = w.trace().unwrap();
        let hw = board.measure_trace(&w.name, &trace, false).unwrap();
        let sim = Simulator::with_decoder(
            board.oracle_platform().clone(),
            Decoder::new(),
            SimOptions::default(),
        );
        let stats = sim.run(&trace).unwrap();
        assert_eq!(
            hw.cycles, stats.core.cycles,
            "{}: board and oracle simulation must agree exactly",
            w.name
        );
        assert_eq!(hw.instructions, stats.core.instructions);
    }
}

/// Traces are deterministic: recording a workload twice yields identical
/// traces, and replaying one trace twice yields identical statistics.
#[test]
fn tracing_and_simulation_are_deterministic() {
    let w = &microbench_suite(Scale::TINY)[5];
    let t1 = w.trace().unwrap();
    let t2 = w.trace().unwrap();
    assert_eq!(t1, t2, "front-end determinism");

    let sim = Simulator::new(Platform::a53_like());
    let s1 = sim.run(&t1).unwrap();
    let s2 = sim.run(&t1).unwrap();
    assert_eq!(s1.core.cycles, s2.core.cycles, "back-end determinism");
}

/// Trace serialisation through the SIFT-like format is lossless for real
/// kernel traces (not just synthetic records).
#[test]
fn kernel_traces_roundtrip_through_the_wire_format() {
    use racesim::trace::{TraceBuffer, TraceReader};
    for w in microbench_suite(Scale::TINY).iter().take(6) {
        let t = w.trace().unwrap();
        let bytes = t.write_to(Vec::new()).unwrap();
        let back = TraceBuffer::from_reader(TraceReader::new(bytes.as_slice()).unwrap()).unwrap();
        assert_eq!(back, t, "{}", w.name);
        // Compression sanity: loops should cost only a few bytes/record.
        let per_record = bytes.len() as f64 / t.len() as f64;
        assert!(per_record < 8.0, "{}: {per_record:.1} B/record", w.name);
    }
}

/// The A72 board outruns the A53 board on ILP-rich workloads (it is the
/// "big" core), and both report internally consistent counters on every
/// kernel. (At tiny scale, cold-start effects can let the shallow in-order
/// pipe win on miss-dominated kernels, so the speed comparison is made on
/// the compute-bound subset.)
#[test]
fn big_core_is_generally_faster() {
    let a53 = ReferenceBoard::firefly_a53();
    let a72 = ReferenceBoard::firefly_a72();
    let ilp_kernels = ["EI", "EM5", "DP1d", "DP1f"];
    let mut a72_wins = 0;
    for w in microbench_suite(Scale::TINY) {
        let c53 = a53.measure(&w).unwrap();
        let c72 = a72.measure(&w).unwrap();
        assert_eq!(c53.instructions, c72.instructions, "{}", w.name);
        assert!(c53.cycles > 0 && c72.cycles > 0);
        if ilp_kernels.contains(&w.name.as_str()) && c72.cpi() < c53.cpi() {
            a72_wins += 1;
        }
    }
    assert!(
        a72_wins >= 3,
        "the OoO core should win on most ILP kernels: {a72_wins}/4"
    );
}

/// The quirky decoder must *hurt* accuracy against the (bug-free)
/// hardware on dense independent FP streams, which the false
/// destination-as-source dependency serialises — the effect the paper's
/// validation uncovered. (Loop kernels with long bodies hide the false
/// cross-iteration dependency, so the sensitive workload is a tight
/// repeated FP operation.)
#[test]
fn decoder_quirks_inflate_fp_kernel_error() {
    use racesim::isa::{asm::Asm, Reg};
    use racesim::trace::{TraceBuffer, TraceRecord};

    // 800 dynamically independent fadds re-writing the same register: the
    // fixed decoder sees no dependency; the quirky one sees a serial
    // 4-cycle chain.
    let mut a = Asm::new();
    a.fadd(Reg::v(1), Reg::v(2), Reg::v(3));
    let p = a.finish();
    let trace: TraceBuffer = (0..800)
        .map(|_| TraceRecord::plain(p.code_base, p.code[0]))
        .collect();

    let board = ReferenceBoard::firefly_a53();
    let hw = board.measure_trace("fp-stream", &trace, false).unwrap();

    let run = |decoder: Decoder| {
        Simulator::with_decoder(Platform::a53_like(), decoder, SimOptions::default())
            .run(&trace)
            .unwrap()
            .cpi()
    };
    let fixed_err = (run(Decoder::new()) - hw.cpi()).abs();
    let quirky_err = (run(Decoder::with_quirks(
        racesim::decoder::Quirks::capstone_like(),
    )) - hw.cpi())
    .abs();
    assert!(
        quirky_err > fixed_err + 0.5,
        "quirky decoder must be clearly less accurate: {quirky_err:.2} vs {fixed_err:.2}"
    );
}
