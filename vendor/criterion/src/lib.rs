//! Offline shim for `criterion` 0.5: the configuration, group, and macro
//! API the racesim benches use, backed by plain wall-clock timing.
//!
//! No statistical analysis, HTML reports, or baseline comparison — each
//! benchmark runs for roughly the configured measurement time and prints
//! the mean time per iteration. Good enough for relative readings; use
//! real criterion for publishable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Criterion {
        self.measurement_time = dur;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, dur: Duration) -> Criterion {
        self.warm_up_time = dur;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_bench(
            &group_name,
            name,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            None,
            f,
        );
    }
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{function}/{parameter}"`.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &self.name,
            name,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &self.name,
            &id.id,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (Reporting happens per-benchmark; nothing to flush.)
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as fits the budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(
    group: &str,
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };

    // Warm-up pass: also calibrates how many iterations fit the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        // Grow geometrically until a single call is a meaningful slice.
        if b.elapsed < warm_up / 10 {
            b.iters = b.iters.saturating_mul(2);
        }
    }

    let samples = sample_size.max(1) as u32;
    let budget_per_sample = measurement / samples;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let measure_start = Instant::now();
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        if measure_start.elapsed() > measurement.saturating_mul(2) {
            break; // budget blown: report what we have
        }
    }

    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean_ns * 1e3),
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / mean_ns * 1e9 / (1 << 20) as f64
        ),
    });
    println!(
        "{label:<40} {:>12.1} ns/iter{}",
        mean_ns,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .throughput(Throughput::Elements(4))
            .bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scale", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10))
            .sample_size(10);
        targets = tiny
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
