//! Minimal MPMC channel, a strict subset of `crossbeam-channel`.
//!
//! Supports the operations racesim's coordinator actually uses:
//! [`bounded`] / [`unbounded`] construction, blocking [`Sender::send`],
//! blocking [`Receiver::recv`], non-blocking [`Receiver::try_recv`], and
//! [`Receiver::recv_timeout`]. Both halves are cloneable (multi-producer,
//! multi-consumer) and disconnect when the last peer on the other side
//! drops, matching the real crate's semantics for these calls. Select,
//! `iter()`, zero-capacity rendezvous channels, and the `send_timeout`
//! family are deliberately absent.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has dropped.
/// Carries the unsent message back, like the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender has dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender has dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender has dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
    /// Signalled when a message arrives or the last sender drops.
    not_empty: Condvar,
    /// Signalled when a message leaves or the last receiver drops.
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn sender_side_open(&self) -> bool {
        self.senders.load(Ordering::SeqCst) > 0
    }

    fn receiver_side_open(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) > 0
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake receivers so they observe the
            // disconnect instead of blocking forever.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (bounded channels block while
    /// full).
    ///
    /// # Errors
    ///
    /// Returns the message back as `SendError` when every receiver has
    /// dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if !self.shared.receiver_side_open() {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self
                        .shared
                        .not_full
                        .wait(queue)
                        .expect("channel lock poisoned");
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

/// The receiving half of a channel. Cloneable; the channel disconnects
/// for senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake senders blocked on a full queue.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    fn pop(&self, queue: &mut VecDeque<T>) -> Option<T> {
        let msg = queue.pop_front();
        if msg.is_some() {
            self.shared.not_full.notify_one();
        }
        msg
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Fails when the channel is empty and every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(msg) = self.pop(&mut queue) {
                return Ok(msg);
            }
            if !self.shared.sender_side_open() {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait(queue)
                .expect("channel lock poisoned");
        }
    }

    /// Returns a waiting message without blocking.
    ///
    /// # Errors
    ///
    /// `Empty` when no message is queued, `Disconnected` when additionally
    /// every sender has dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
        if let Some(msg) = self.pop(&mut queue) {
            return Ok(msg);
        }
        if self.shared.sender_side_open() {
            Err(TryRecvError::Empty)
        } else {
            Err(TryRecvError::Disconnected)
        }
    }

    /// Blocks for at most `timeout` waiting for a message.
    ///
    /// # Errors
    ///
    /// `Timeout` when the deadline passes, `Disconnected` when the channel
    /// is empty and every sender has dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().expect("channel lock poisoned");
        loop {
            if let Some(msg) = self.pop(&mut queue) {
                return Ok(msg);
            }
            if !self.shared.sender_side_open() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .expect("channel lock poisoned");
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.shared.sender_side_open() {
                    return Err(RecvTimeoutError::Timeout);
                }
                return Err(RecvTimeoutError::Disconnected);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("channel lock poisoned")
            .len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates an MPMC channel holding at most `cap` messages; sends block
/// while the channel is full. `cap` must be at least 1 (the real crate's
/// zero-capacity rendezvous channel is not part of this subset).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity channels are not supported");
    channel(Some(cap))
}

/// Creates an MPMC channel of unbounded capacity; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_unblocks_when_last_sender_drops() {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || rx.recv());
        thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(t.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_every_message_delivered_exactly_once() {
        let (tx, rx) = bounded(4);
        let n_producers = 3usize;
        let per_producer = 50usize;
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut producers = Vec::new();
        for p in 0..n_producers {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..per_producer {
                    tx.send(p * per_producer + i).unwrap();
                }
            }));
        }
        drop(tx);
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..n_producers * per_producer).collect();
        assert_eq!(all, expect);
    }
}
