//! Offline shim for `crossbeam`: the `scope` entry point, implemented on
//! `std::thread::scope` (stable since 1.63), plus a minimal MPMC
//! [`channel`] module. Both expose a strict subset of the real crate's
//! API so the shim can be swapped for the real dependency unchanged.
//!
//! Behavioural difference from the real crate: a panicking worker
//! propagates its panic when the scope joins rather than surfacing as
//! `Err`, so the customary `.expect("worker panicked")` on the result
//! still reports the failure, just with the worker's own message.

pub mod channel;

use std::any::Any;
use std::thread;

/// Argument passed to spawned closures. The real crossbeam passes the
/// scope itself so workers can spawn recursively; racesim's workers never
/// do, so this is a placeholder type.
#[derive(Debug)]
pub struct ScopedSpawn;

/// A scope in which worker threads borrowing the environment can run.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker thread.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopedSpawn) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&ScopedSpawn))
    }
}

/// Creates a scope for spawning threads that may borrow the environment.
/// All spawned threads are joined before this returns.
#[allow(clippy::type_complexity)]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
