//! Offline shim for `parking_lot`: a `Mutex` with the parking_lot API
//! (non-poisoning `lock()` returning the guard directly) backed by
//! `std::sync::Mutex`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex. Unlike `std`, a panic in another holder does not
    /// poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
