//! Offline shim for `proptest` 1.x: the strategy combinators and macros the
//! racesim test suite uses, on top of a deterministic in-crate RNG.
//!
//! Differences from upstream that matter: no shrinking (a failing case is
//! reported with the generated inputs via normal assert messages, but not
//! minimised) and no persisted failure seeds. Generation is deterministic
//! per test so failures reproduce on re-run.

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is run with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator feeding strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

/// Strategies for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms. Weights are ignored — each arm is
        /// equally likely (upstream `prop_oneof!` without weights is also
        /// uniform).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                    (self.start as i128 + hi as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }

    /// Types with a canonical strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for a primitive.
    #[derive(Debug, Clone)]
    pub struct AnyPrim<T> {
        _marker: PhantomData<T>,
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> AnyPrim<$t> {
                    AnyPrim { _marker: PhantomData }
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrim<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            self_rng_bit(rng)
        }
    }

    fn self_rng_bit(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;
        fn arbitrary() -> AnyPrim<bool> {
            AnyPrim {
                _marker: PhantomData,
            }
        }
    }

    /// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body for `cases` generated
/// inputs (default 256, or `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    // Internal muncher arms first, so the public catch-all below cannot
    // swallow the recursive calls.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` is written inside the macro invocation (as upstream
        // requires) and re-emitted here among the captured attributes.
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::Config = $cfg;
            // Seed from the test path so distinct tests explore distinct
            // streams but each run is reproducible.
            let seed = {
                let path = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in path.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for _case in 0..cfg.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniform choice among strategies yielding one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $arm:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union::new(vec![$(($arm).boxed()),+])
    }};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(x in 10..20u32, y in -4..4i64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn map_and_vec(v in collection::vec((0..100u64).prop_map(|n| n * 2), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(3u8), (5..7u8)]) {
            prop_assert!(k == 1 || k == 3 || k == 5 || k == 6);
        }

        #[test]
        fn any_bool_and_u64(b in any::<bool>(), n in any::<u64>()) {
            let _ = (b, n);
        }
    }
}
