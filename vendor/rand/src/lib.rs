//! Offline shim for `rand` 0.8: exactly the API surface racesim uses.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! splitmix64 — statistically strong and fully deterministic per seed,
//! which is all the racing tuner and the test suite rely on. The streams
//! differ from the real `StdRng` (ChaCha12); nothing in the workspace
//! asserts on specific draws.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`]. Generic over the output type
/// (rather than using an associated type) so inference can flow from the
/// use of the sampled value back into untyped range literals, as with the
/// real crate.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Converts 53 random bits into a double in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// A uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64.
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_range(lo: f32, hi: f32, rng: &mut dyn RngCore) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

// One blanket impl (not one per element type) so type inference can
// unify an untyped range literal with the context the sample is used in,
// exactly as the real crate's `SampleRange` does.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// Types [`Rng::gen`] can produce (the shim's stand-in for sampling from
/// the `Standard` distribution).
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed ^ 0x7C3B_666F_B66C_B636;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for exact checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`state`](Self::state): the restored generator produces the
        /// same stream the original would have continued with.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
