//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! The workspace derives `Serialize`/`Deserialize` on config types for
//! source compatibility with the real serde, but never calls the traits —
//! platform configs are serialised through `racesim_sim::config_text`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
