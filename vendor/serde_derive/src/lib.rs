//! Offline shim for `serde_derive`: the derives are accepted and expand to
//! nothing. Nothing in this workspace consumes the serde traits as bounds;
//! config serialisation goes through `racesim_sim::config_text`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
